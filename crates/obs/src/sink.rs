//! Event sinks: where a [`crate::Tracer`]'s stream goes.

use std::collections::VecDeque;
use std::io::Write;

use crate::event::Event;

/// Consumes a tracer's event stream.
///
/// Implementations must be cheap per event — the tracer calls
/// [`Sink::emit`] from inside engine fixed-point loops.
pub trait Sink {
    /// Receives one event.
    fn emit(&mut self, event: &Event);

    /// Flushes any buffering (called by [`crate::Tracer::finish`]).
    fn flush(&mut self) {}

    /// Removes and returns all retained events. Write-through sinks
    /// retain nothing and return an empty vector.
    fn drain(&mut self) -> Vec<Event> {
        Vec::new()
    }

    /// Returns (and clears) the sink's latched write error, if any.
    /// Sinks that cannot fail return `None` (the default). Callers that
    /// must not lose telemetry silently — `reach --trace-out`, the job
    /// journal — check this after [`Sink::flush`] and turn `Some` into a
    /// nonzero exit.
    fn take_error(&mut self) -> Option<std::io::Error> {
        None
    }
}

/// Serializes each event as one JSON line into a [`Write`] target
/// (wrap files in a `BufWriter` — the tracer emits one small line per
/// sampled iteration).
pub struct JsonlSink<W: Write> {
    w: W,
    /// First write error, if any: subsequent emits become no-ops and the
    /// error is surfaced by [`JsonlSink::take_error`] / logged on flush.
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        JsonlSink { w, error: None }
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn emit(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let line = event.encode();
        if let Err(e) = self
            .w
            .write_all(line.as_bytes())
            .and_then(|()| self.w.write_all(b"\n"))
        {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.w.flush() {
                self.error = Some(e);
            }
        }
        if let Some(e) = &self.error {
            // Telemetry is best-effort: a trace write failure must never
            // abort the traced run, but it must not be silent either.
            eprintln!("bfvr-obs: trace write failed: {e}");
        }
    }

    fn take_error(&mut self) -> Option<std::io::Error> {
        self.error.take()
    }
}

/// Bounded in-memory sink keeping the most recent `capacity` events —
/// the test sink, and the flight-recorder pattern (trace always, pay
/// only a fixed buffer, inspect on failure).
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<Event>,
    /// Total events offered, including evicted ones.
    seen: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            buf: VecDeque::new(),
            seen: 0,
        }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Total events offered over the sink's lifetime (≥ retained count).
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

impl Sink for RingSink {
    fn emit(&mut self, event: &Event) {
        self.seen += 1;
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(event.clone());
    }

    fn drain(&mut self) -> Vec<Event> {
        self.buf.drain(..).collect()
    }
}

/// Unbounded collector — used by racing lanes, which buffer their whole
/// (short-lived) stream and ship it across the thread boundary for the
/// race driver to merge.
#[derive(Default)]
pub struct VecSink {
    buf: Vec<Event>,
}

impl VecSink {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        VecSink::default()
    }
}

impl Sink for VecSink {
    fn emit(&mut self, event: &Event) {
        self.buf.push(event.clone());
    }

    fn drain(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.buf)
    }
}

/// Discards everything (the disabled-tracing stand-in for tests).
#[derive(Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&mut self, _event: &Event) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(seq: u64) -> Event {
        Event {
            seq,
            t_us: seq * 10,
            lane: None,
            kind: EventKind::Cancel {
                engine: "BFV".into(),
            },
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut ring = RingSink::new(2);
        for i in 0..5 {
            ring.emit(&ev(i));
        }
        assert_eq!(ring.seen(), 5);
        let kept: Vec<u64> = ring.events().map(|e| e.seq).collect();
        assert_eq!(kept, vec![3, 4]);
        assert_eq!(ring.drain().len(), 2);
        assert_eq!(ring.events().count(), 0);
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(&ev(0));
        sink.emit(&ev(1));
        sink.flush();
        assert!(sink.take_error().is_none());
        let text = String::from_utf8(sink.w).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(Event::parse(lines[0]).unwrap(), ev(0));
        assert_eq!(Event::parse(lines[1]).unwrap(), ev(1));
    }

    #[test]
    fn vec_sink_drains_in_order() {
        let mut sink = VecSink::new();
        sink.emit(&ev(7));
        sink.emit(&ev(8));
        let drained = sink.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].seq, 7);
        assert!(sink.drain().is_empty());
    }
}
