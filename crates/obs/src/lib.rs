//! # bfvr-obs — structured run telemetry for `bfvr`
//!
//! A zero-dependency observability layer: **spans** (nested, timed
//! against a monotonic clock, carrying counter deltas), a **counter**
//! model for snapshotting manager/cache/unique-table statistics, and an
//! append-only **JSONL event stream** that `bfvr report` renders back
//! into per-engine timelines.
//!
//! ## Design constraints
//!
//! * **Non-perturbing.** Everything a tracer records comes from `&self`
//!   accessors on the instrumented structures; recording a trace must
//!   not change allocation, garbage collection, or cache behaviour of
//!   the traced run (see `docs/observability.md` for the contract and
//!   the regression test that enforces it).
//! * **Cheap.** One small heap-free-ish event per *sampled* iteration;
//!   the sampling stride ([`Tracer::with_sampling`]) bounds overhead on
//!   long traversals. Un-sampled iterations cost one branch.
//! * **Offline.** No serde, no tracing-rs: the JSON encoder/parser in
//!   [`json`] is hand-rolled and deterministic (sorted keys), so traces
//!   diff cleanly and the crate builds in the no-network container.
//! * **Thread-strategy, not thread-safety.** [`Tracer`] is deliberately
//!   `!Sync`; racing lanes each run a private collector tracer
//!   ([`Tracer::collector`]) and the race driver merges the plain-data
//!   event vectors with [`Tracer::ingest`], tagging each with its lane.
//!
//! ## Stream shape
//!
//! A well-formed trace starts with a `meta` header, then nests
//! `run > engine` span pairs around flat `iter` records:
//!
//! ```text
//! meta        schema version, sampling stride, label
//! span_open   kind=run    name="queue4/S1"
//! span_open   kind=engine name="BFV"    (parent = run span)
//! iter        per-iteration measurements + counter snapshot
//! ...
//! span_close  kind=engine (duration + counter delta across the engine)
//! engine_end  outcome, iterations, states, peak nodes
//! span_close  kind=run
//! ```
//!
//! Race traces add `cancel`/`winner` events and lane-tagged copies of
//! each lane's stream; escalation traces add `round` events; resource
//! exhaustion (real or fault-injected — indistinguishable by design)
//! adds `limit` events.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod event;
pub mod json;
pub mod report;
pub mod sink;
mod tracer;

pub use event::{Counters, Event, EventKind, IterRecord, LimitKind, SpanKind, SCHEMA_VERSION};
pub use report::{parse_jsonl, render, Format, TraceError};
pub use sink::{JsonlSink, NullSink, RingSink, Sink, VecSink};
pub use tracer::{SpanId, Tracer};
