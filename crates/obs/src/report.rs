//! Turns a JSONL trace back into human-readable per-engine timelines —
//! the `bfvr report` backend.
//!
//! The renderer is schema-checking by construction: it refuses traces
//! whose first line is not a supported [`EventKind::Meta`] header or
//! whose lines fail to decode, which is what the CI trace-validation
//! step relies on.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::event::{Event, EventKind, IterRecord, SpanKind};

/// Output style for [`render`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Fixed-width columns for terminals.
    Text,
    /// GitHub-flavored markdown pipe tables.
    Markdown,
}

/// A trace that failed to parse or validate, with its 1-based line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number in the JSONL input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

/// Parses and validates a JSONL trace: every line must decode against
/// the schema, and the first line must be a `meta` header with a
/// supported version. Blank lines are permitted and skipped.
///
/// # Errors
///
/// Returns the first offending line.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, TraceError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = Event::parse(line).map_err(|e| TraceError {
            line: i + 1,
            message: e.to_string(),
        })?;
        if events.is_empty() {
            match &event.kind {
                EventKind::Meta { version, .. } if *version == crate::event::SCHEMA_VERSION => {}
                EventKind::Meta { version, .. } => {
                    return Err(TraceError {
                        line: i + 1,
                        message: format!("unsupported schema version {version}"),
                    })
                }
                _ => {
                    return Err(TraceError {
                        line: i + 1,
                        message: "first event is not a `meta` header".into(),
                    })
                }
            }
        }
        events.push(event);
    }
    if events.is_empty() {
        return Err(TraceError {
            line: 1,
            message: "empty trace".into(),
        });
    }
    Ok(events)
}

/// One engine traversal reconstructed from the stream.
#[derive(Clone, Debug, Default)]
struct EngineRun {
    engine: String,
    lane: Option<u64>,
    outcome: Option<String>,
    iterations: u64,
    states: Option<f64>,
    peak_nodes: u64,
    dur_us: u64,
    winner: bool,
    cancelled: bool,
    limit: Option<String>,
    rounds: u64,
    /// Dynamic reorder (sift) passes, with summed before/after live nodes.
    reorders: u64,
    reorder_before: u64,
    reorder_after: u64,
    /// `(cache_lookups, cache_hits)` movement across the engine span.
    cache: Option<(f64, f64)>,
    iters: Vec<IterRecord>,
}

impl EngineRun {
    fn hit_rate(&self) -> Option<f64> {
        let (lookups, hits) = self.cache.or_else(|| {
            // Fall back to the last iteration's cumulative snapshot when
            // no engine span closed (e.g. a truncated trace).
            let last = self.iters.last()?;
            Some((
                last.snapshot.get("cache_lookups")?,
                last.snapshot.get("cache_hits")?,
            ))
        })?;
        (lookups > 0.0).then(|| hits / lookups * 100.0)
    }
}

/// One `run`-span group (a CLI invocation or one benchmark cell).
#[derive(Clone, Debug, Default)]
struct RunGroup {
    name: String,
    engines: Vec<EngineRun>,
}

#[derive(Default)]
struct Model {
    label: String,
    sample_every: u64,
    groups: Vec<RunGroup>,
}

/// Key for "the engine run currently being filled" — racing lanes get
/// distinct keys even when they run the same engine.
type StreamKey = (Option<u64>, String);

fn build(events: &[Event]) -> Model {
    let mut model = Model::default();
    // Index into `model.groups` of the innermost open run span (main
    // stream only; lanes never open run spans).
    let mut open_run: Option<usize> = None;
    // (group, index) of the engine run currently accepting events.
    let mut current: HashMap<StreamKey, (usize, usize)> = HashMap::new();
    // Map engine span id -> stream key, to attribute span_close deltas.
    let mut engine_spans: HashMap<(Option<u64>, u64), StreamKey> = HashMap::new();

    let group_of = |model: &mut Model, open_run: Option<usize>| -> usize {
        if let Some(g) = open_run {
            return g;
        }
        if model.groups.is_empty() {
            model.groups.push(RunGroup {
                name: "(untitled run)".into(),
                engines: Vec::new(),
            });
        }
        model.groups.len() - 1
    };

    for event in events {
        let lane = event.lane;
        match &event.kind {
            EventKind::Meta {
                label,
                sample_every,
                ..
            } => {
                if model.label.is_empty() {
                    model.label = label.clone();
                    model.sample_every = *sample_every;
                }
            }
            EventKind::SpanOpen {
                id,
                kind: SpanKind::Run,
                name,
                ..
            } if lane.is_none() => {
                model.groups.push(RunGroup {
                    name: name.clone(),
                    engines: Vec::new(),
                });
                open_run = Some(model.groups.len() - 1);
                let _ = id;
            }
            EventKind::SpanClose {
                kind: SpanKind::Run,
                ..
            } if lane.is_none() => {
                open_run = None;
            }
            EventKind::SpanOpen {
                id,
                kind: SpanKind::Engine,
                name,
                ..
            } => {
                let g = group_of(&mut model, open_run);
                model.groups[g].engines.push(EngineRun {
                    engine: name.clone(),
                    lane,
                    ..EngineRun::default()
                });
                let key: StreamKey = (lane, name.clone());
                current.insert(key.clone(), (g, model.groups[g].engines.len() - 1));
                engine_spans.insert((lane, *id), key);
            }
            EventKind::SpanClose {
                id,
                kind: SpanKind::Engine,
                delta,
                ..
            } => {
                if let Some(key) = engine_spans.remove(&(lane, *id)) {
                    if let Some(&(g, i)) = current.get(&key) {
                        if let (Some(lookups), Some(hits)) =
                            (delta.get("cache_lookups"), delta.get("cache_hits"))
                        {
                            model.groups[g].engines[i].cache = Some((lookups, hits));
                        }
                    }
                }
            }
            EventKind::Iter(record) => {
                let run = run_for(&mut model, &mut current, open_run, lane, &record.engine);
                run.iterations = run.iterations.max(record.iteration);
                run.iters.push(record.clone());
            }
            EventKind::EngineEnd {
                engine,
                outcome,
                iterations,
                states,
                peak_nodes,
                dur_us,
            } => {
                let run = run_for(&mut model, &mut current, open_run, lane, engine);
                run.outcome = Some(outcome.to_string());
                run.iterations = *iterations;
                run.states = *states;
                run.peak_nodes = *peak_nodes;
                run.dur_us = *dur_us;
            }
            EventKind::Limit {
                engine,
                kind,
                iterations,
            } => {
                let run = run_for(&mut model, &mut current, open_run, lane, engine);
                run.limit = Some(kind.label().to_string());
                run.iterations = run.iterations.max(*iterations);
            }
            EventKind::Cancel { engine } => {
                let run = run_for_note(&mut model, &mut current, open_run, lane, engine);
                run.cancelled = true;
            }
            EventKind::Winner { engine } => {
                let run = run_for_note(&mut model, &mut current, open_run, lane, engine);
                run.winner = true;
            }
            EventKind::Round { engine, round, .. } => {
                let run = run_for(&mut model, &mut current, open_run, lane, engine);
                run.rounds = run.rounds.max(round + 1);
            }
            EventKind::Reorder {
                engine,
                before,
                after,
                ..
            } => {
                let run = run_for(&mut model, &mut current, open_run, lane, engine);
                run.reorders += 1;
                run.reorder_before += before;
                run.reorder_after += after;
            }
            EventKind::SpanOpen { .. } | EventKind::SpanClose { .. } => {}
        }
    }
    model
}

/// The engine run events for `(lane, engine)` currently accumulate into,
/// creating one (inside the open run group) if none exists — traces that
/// lost their engine span_open (ring eviction) still report.
fn run_for<'m>(
    model: &'m mut Model,
    current: &mut HashMap<StreamKey, (usize, usize)>,
    open_run: Option<usize>,
    lane: Option<u64>,
    engine: &str,
) -> &'m mut EngineRun {
    let key: StreamKey = (lane, engine.to_string());
    if let Some(&(g, i)) = current.get(&key) {
        return &mut model.groups[g].engines[i];
    }
    let g = match open_run {
        Some(g) => g,
        None => {
            if model.groups.is_empty() {
                model.groups.push(RunGroup {
                    name: "(untitled run)".into(),
                    engines: Vec::new(),
                });
            }
            model.groups.len() - 1
        }
    };
    model.groups[g].engines.push(EngineRun {
        engine: engine.to_string(),
        lane,
        ..EngineRun::default()
    });
    let i = model.groups[g].engines.len() - 1;
    current.insert(key, (g, i));
    &mut model.groups[g].engines[i]
}

/// The run a race-driver annotation (`cancel`/`winner`) refers to: the
/// driver emits these on the main stream (no lane tag) naming the
/// engine, while the lane's own events carry the lane tag — so match by
/// engine name within the group, taking the most recent run. Lanes that
/// never produced events (cancelled before starting) get a fresh row via
/// [`run_for`].
fn run_for_note<'m>(
    model: &'m mut Model,
    current: &mut HashMap<StreamKey, (usize, usize)>,
    open_run: Option<usize>,
    lane: Option<u64>,
    engine: &str,
) -> &'m mut EngineRun {
    let g_opt = match open_run {
        Some(g) => Some(g),
        None => model.groups.len().checked_sub(1),
    };
    let found = g_opt.and_then(|g| {
        model.groups[g]
            .engines
            .iter()
            .rposition(|r| r.engine == engine)
            .map(|i| (g, i))
    });
    match found {
        Some((g, i)) => &mut model.groups[g].engines[i],
        None => run_for(model, current, open_run, lane, engine),
    }
}

fn fmt_states(states: Option<f64>) -> String {
    states.map_or_else(|| "-".into(), |s| format!("{s}"))
}

fn fmt_ms(us: u64) -> String {
    format!("{:.1}", us as f64 / 1e3)
}

fn fmt_hit(rate: Option<f64>) -> String {
    rate.map_or_else(|| "-".into(), |r| format!("{r:.1}%"))
}

fn notes(run: &EngineRun) -> String {
    let mut notes = Vec::new();
    if run.winner {
        notes.push("winner".to_string());
    }
    if run.cancelled {
        notes.push("cancelled".to_string());
    }
    if let Some(limit) = &run.limit {
        notes.push(limit.clone());
    }
    if run.rounds > 1 {
        notes.push(format!("{} escalation rounds", run.rounds));
    }
    if run.reorders > 0 {
        notes.push(format!(
            "{} reorder{} ({}→{} live)",
            run.reorders,
            if run.reorders == 1 { "" } else { "s" },
            run.reorder_before,
            run.reorder_after,
        ));
    }
    notes.join(", ")
}

/// Renders a parsed trace as per-engine timelines: one summary row per
/// engine traversal (iterations, wall clock, peak nodes, cache hit rate,
/// race/limit annotations) and one iteration table per traversal that
/// recorded iteration events.
#[must_use]
pub fn render(events: &[Event], format: Format) -> String {
    let model = build(events);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} (schema v{}, iteration sampling 1/{})",
        if model.label.is_empty() {
            "(unlabeled)"
        } else {
            &model.label
        },
        crate::event::SCHEMA_VERSION,
        model.sample_every.max(1),
    );
    for group in &model.groups {
        if group.engines.is_empty() {
            continue;
        }
        let _ = writeln!(out);
        match format {
            Format::Text => {
                let _ = writeln!(out, "== {} ==", group.name);
            }
            Format::Markdown => {
                let _ = writeln!(out, "### {}\n", group.name);
            }
        }
        summary_table(&mut out, group, format);
        for run in &group.engines {
            if run.iters.is_empty() {
                continue;
            }
            let _ = writeln!(out);
            let lane = run.lane.map_or(String::new(), |l| format!(" (lane {l})"));
            match format {
                Format::Text => {
                    let _ = writeln!(out, "-- {}{} timeline --", run.engine, lane);
                }
                Format::Markdown => {
                    let _ = writeln!(out, "#### {}{} timeline\n", run.engine, lane);
                }
            }
            iter_table(&mut out, run, format);
        }
    }
    out
}

const SUMMARY_COLS: [&str; 8] = [
    "engine",
    "lane",
    "outcome",
    "iters",
    "states",
    "time(ms)",
    "peak-nodes",
    "cache-hit",
];

fn summary_table(out: &mut String, group: &RunGroup, format: Format) {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for run in &group.engines {
        rows.push(vec![
            run.engine.clone(),
            run.lane.map_or_else(|| "-".into(), |l| l.to_string()),
            run.outcome.clone().unwrap_or_else(|| "?".into()),
            run.iterations.to_string(),
            fmt_states(run.states),
            fmt_ms(run.dur_us),
            run.peak_nodes.to_string(),
            fmt_hit(run.hit_rate()),
        ]);
    }
    let mut notes_col: Vec<String> = group.engines.iter().map(notes).collect();
    let has_notes = notes_col.iter().any(|n| !n.is_empty());
    let mut cols: Vec<&str> = SUMMARY_COLS.to_vec();
    if has_notes {
        cols.push("notes");
        for (row, note) in rows.iter_mut().zip(notes_col.drain(..)) {
            row.push(note);
        }
    }
    table(out, &cols, &rows, format);
}

const ITER_COLS: [&str; 9] = [
    "iter", "dur(ms)", "frontier", "reached", "live", "alloc", "gc", "hit%", "states",
];

/// Preferred ordering for the per-iteration op-phase columns; keys the
/// trace emits that are not listed here follow in first-seen order.
const OP_ORDER: [&str; 6] = ["image", "freeze", "compose", "intern", "convert", "union"];

/// The union of op-phase keys across a run's iterations, in [`OP_ORDER`]
/// then first-seen order — the frozen backend emits `freeze`/`compose`/
/// `intern` sub-phases the sequential path doesn't, and a run's table
/// shows exactly the phases its engine recorded.
fn op_keys(run: &EngineRun) -> Vec<String> {
    let mut seen: Vec<String> = Vec::new();
    for r in &run.iters {
        for (name, _) in r.ops.iter() {
            if !seen.iter().any(|s| s == name) {
                seen.push(name.to_string());
            }
        }
    }
    seen.sort_by_key(|name| {
        OP_ORDER
            .iter()
            .position(|o| o == name)
            .unwrap_or(OP_ORDER.len())
    });
    seen
}

fn iter_table(out: &mut String, run: &EngineRun, format: Format) {
    let ops = op_keys(run);
    let op_headers: Vec<String> = ops.iter().map(|k| format!("{k}(ms)")).collect();
    let mut cols: Vec<&str> = ITER_COLS.to_vec();
    cols.extend(op_headers.iter().map(String::as_str));
    let rows: Vec<Vec<String>> = run
        .iters
        .iter()
        .map(|r| {
            let hit = match (
                r.snapshot.get("cache_lookups"),
                r.snapshot.get("cache_hits"),
            ) {
                (Some(l), Some(h)) if l > 0.0 => format!("{:.1}", h / l * 100.0),
                _ => "-".into(),
            };
            let mut row = vec![
                r.iteration.to_string(),
                fmt_ms(r.dur_us),
                r.frontier_nodes.to_string(),
                r.reached_nodes.to_string(),
                r.live_nodes.to_string(),
                r.allocated_nodes.to_string(),
                r.gc_collected.to_string(),
                hit,
                fmt_states(r.states),
            ];
            for key in &ops {
                row.push(
                    r.ops
                        .get(key)
                        .map_or_else(|| "-".into(), |us| format!("{:.1}", us / 1e3)),
                );
            }
            row
        })
        .collect();
    table(out, &cols, &rows, format);
}

/// Writes a table in either format, sizing text columns to content.
fn table(out: &mut String, cols: &[&str], rows: &[Vec<String>], format: Format) {
    match format {
        Format::Markdown => {
            let _ = writeln!(out, "| {} |", cols.join(" | "));
            let _ = writeln!(
                out,
                "|{}|",
                cols.iter().map(|_| "---").collect::<Vec<_>>().join("|")
            );
            for row in rows {
                let _ = writeln!(out, "| {} |", row.join(" | "));
            }
        }
        Format::Text => {
            let mut widths: Vec<usize> = cols.iter().map(|c| c.len()).collect();
            for row in rows {
                for (w, cell) in widths.iter_mut().zip(row) {
                    *w = (*w).max(cell.len());
                }
            }
            let mut line = String::new();
            for (w, c) in widths.iter().zip(cols) {
                let _ = write!(line, "{c:>w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
            for row in rows {
                let mut line = String::new();
                for (w, cell) in widths.iter().zip(row) {
                    let _ = write!(line, "{cell:>w$}  ");
                }
                let _ = writeln!(out, "{}", line.trim_end());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Counters;
    use crate::tracer::Tracer;
    use crate::SpanKind;

    fn sample_trace() -> Vec<Event> {
        let mut t = Tracer::collector(1);
        t.meta("unit test");
        let run = t.open_span(SpanKind::Run, "counter4/S1", Counters::new());
        let e = t.open_span(
            SpanKind::Engine,
            "BFV",
            Counters::new()
                .with("cache_lookups", 0.0)
                .with("cache_hits", 0.0),
        );
        t.iteration(IterRecord {
            engine: "BFV".into(),
            iteration: 1,
            dur_us: 1500,
            frontier_nodes: 4,
            reached_nodes: 4,
            live_nodes: 30,
            allocated_nodes: 40,
            peak_nodes: 40,
            gc_collected: 0,
            states: Some(2.0),
            snapshot: Counters::new()
                .with("cache_lookups", 10.0)
                .with("cache_hits", 5.0),
            ops: Counters::new().with("image", 900.0),
        });
        t.close_span(
            e,
            &Counters::new()
                .with("cache_lookups", 100.0)
                .with("cache_hits", 80.0),
        );
        t.engine_end("BFV", "ok", 5, Some(16.0), 40, 2500);
        t.close_span(run, &Counters::new());
        t.drain()
    }

    #[test]
    fn round_trips_through_jsonl() {
        let events = sample_trace();
        let text: String = events.iter().map(|e| e.encode() + "\n").collect();
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn renders_summary_and_timeline() {
        let events = sample_trace();
        let text = render(&events, Format::Text);
        assert!(text.contains("counter4/S1"), "{text}");
        assert!(text.contains("BFV"), "{text}");
        assert!(text.contains("80.0%"), "cache hit from span delta: {text}");
        assert!(text.contains("16"), "states: {text}");
        let md = render(&events, Format::Markdown);
        assert!(md.contains("| BFV |") || md.contains("| BFV "), "{md}");
        assert!(md.contains("### counter4/S1"), "{md}");
    }

    #[test]
    fn renders_op_phase_columns() {
        let mut t = Tracer::collector(1);
        t.meta("phases");
        t.iteration(IterRecord {
            engine: "BFV*F".into(),
            iteration: 1,
            dur_us: 2000,
            frontier_nodes: 1,
            reached_nodes: 1,
            live_nodes: 1,
            allocated_nodes: 1,
            peak_nodes: 1,
            gc_collected: 0,
            states: None,
            snapshot: Counters::new(),
            ops: Counters::new()
                .with("union", 100.0)
                .with("image", 1500.0)
                .with("freeze", 200.0)
                .with("compose", 900.0)
                .with("intern", 150.0),
        });
        let text = render(&t.drain(), Format::Text);
        // Canonical order, not the Counters' sorted-key order.
        let cols: Vec<usize> = [
            "image(ms)",
            "freeze(ms)",
            "compose(ms)",
            "intern(ms)",
            "union(ms)",
        ]
        .iter()
        .map(|c| {
            text.find(c)
                .unwrap_or_else(|| panic!("{c} missing: {text}"))
        })
        .collect();
        assert!(cols.windows(2).all(|w| w[0] < w[1]), "order: {text}");
        assert!(text.contains("0.9"), "compose ms: {text}");
    }

    #[test]
    fn rejects_headerless_trace() {
        let line = Event {
            seq: 0,
            t_us: 0,
            lane: None,
            kind: EventKind::Cancel {
                engine: "BFV".into(),
            },
        }
        .encode();
        let err = parse_jsonl(&line).unwrap_err();
        assert!(err.message.contains("meta"), "{err}");
        assert!(parse_jsonl("").is_err());
    }

    #[test]
    fn rejects_malformed_line_with_location() {
        let mut t = Tracer::collector(1);
        t.meta("x");
        let good: String = t.drain().iter().map(|e| e.encode() + "\n").collect();
        let text = format!("{good}{{not json\n");
        let err = parse_jsonl(&text).unwrap_err();
        assert_eq!(err.line, 2);
    }
}
