//! The [`Tracer`]: span stack, sampling, sequence/time stamping, and
//! lane-stream merging.

use std::time::Instant;

use crate::event::{Counters, Event, EventKind, IterRecord, LimitKind, SpanKind, SCHEMA_VERSION};
use crate::sink::{Sink, VecSink};

/// Opaque handle to an open span (returned by [`Tracer::open_span`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(u64);

struct OpenSpan {
    id: u64,
    kind: SpanKind,
    name: String,
    start_us: u64,
    at_open: Counters,
}

/// Emits a single telemetry stream: monotonically timestamped events,
/// nested spans with per-span counter deltas, and an iteration sampling
/// stride.
///
/// A tracer owns its [`Sink`] and its monotonic epoch ([`Instant`] taken
/// at construction); every event is stamped with a dense sequence number
/// and microseconds since that epoch. Tracers are deliberately not
/// thread-safe — each racing lane builds its own collector tracer
/// ([`Tracer::collector`]) and the driver merges the lane streams with
/// [`Tracer::ingest`].
pub struct Tracer {
    sink: Box<dyn Sink>,
    epoch: Instant,
    seq: u64,
    next_span: u64,
    stack: Vec<OpenSpan>,
    sample_every: u64,
}

impl Tracer {
    /// A tracer recording every iteration into `sink`.
    #[must_use]
    pub fn new(sink: Box<dyn Sink>) -> Self {
        Tracer::with_sampling(sink, 1)
    }

    /// A tracer recording every `sample_every`-th iteration (plus the
    /// first); `0` is treated as `1`.
    #[must_use]
    pub fn with_sampling(sink: Box<dyn Sink>, sample_every: u64) -> Self {
        Tracer {
            sink,
            epoch: Instant::now(),
            seq: 0,
            next_span: 0,
            stack: Vec::new(),
            sample_every: sample_every.max(1),
        }
    }

    /// An in-memory collector tracer (unbounded [`VecSink`]) — the
    /// racing-lane configuration; retrieve the stream with
    /// [`Tracer::drain`].
    #[must_use]
    pub fn collector(sample_every: u64) -> Self {
        Tracer::with_sampling(Box::new(VecSink::new()), sample_every)
    }

    /// The iteration sampling stride.
    #[must_use]
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Whether iteration `iteration` (1-based) should be recorded under
    /// the sampling stride. The first iteration is always recorded so a
    /// trace is never empty of iteration data.
    #[must_use]
    pub fn should_record(&self, iteration: u64) -> bool {
        iteration == 1 || iteration.is_multiple_of(self.sample_every)
    }

    fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn emit(&mut self, kind: EventKind) {
        let event = Event {
            seq: self.seq,
            t_us: self.now_us(),
            lane: None,
            kind,
        };
        self.seq += 1;
        self.sink.emit(&event);
    }

    /// Writes the stream header (call once, first).
    pub fn meta(&mut self, label: &str) {
        let sample_every = self.sample_every;
        self.emit(EventKind::Meta {
            version: SCHEMA_VERSION,
            sample_every,
            label: label.to_string(),
        });
    }

    /// Opens a span nested under the innermost open span. `at_open` is
    /// the counter snapshot the eventual [`Tracer::close_span`] delta is
    /// computed against (pass [`Counters::new`] when no counters apply).
    pub fn open_span(&mut self, kind: SpanKind, name: &str, at_open: Counters) -> SpanId {
        let id = self.next_span;
        self.next_span += 1;
        let parent = self.stack.last().map(|s| s.id);
        let start_us = self.now_us();
        self.emit(EventKind::SpanOpen {
            id,
            parent,
            kind,
            name: name.to_string(),
        });
        self.stack.push(OpenSpan {
            id,
            kind,
            name: name.to_string(),
            start_us,
            at_open,
        });
        SpanId(id)
    }

    /// Closes a span, emitting its duration and the delta `now − open`.
    ///
    /// Spans close strictly LIFO; closing a span that is not the
    /// innermost one first closes every span nested inside it (with the
    /// same `now` snapshot), so the stream always nests properly even if
    /// a caller unwinds past intermediate spans. Closing an id that is
    /// not on the stack (already closed) is a no-op.
    pub fn close_span(&mut self, id: SpanId, now: &Counters) {
        if !self.stack.iter().any(|s| s.id == id.0) {
            return;
        }
        while let Some(span) = self.stack.pop() {
            let dur_us = self.now_us().saturating_sub(span.start_us);
            self.emit(EventKind::SpanClose {
                id: span.id,
                kind: span.kind,
                name: span.name.clone(),
                dur_us,
                delta: now.delta(&span.at_open),
            });
            if span.id == id.0 {
                break;
            }
        }
    }

    /// Depth of the open-span stack (diagnostics/tests).
    #[must_use]
    pub fn open_spans(&self) -> usize {
        self.stack.len()
    }

    /// Records one sampled iteration. Callers are expected to check
    /// [`Tracer::should_record`] *before* gathering the record's
    /// measurements, so skipped iterations cost nothing.
    pub fn iteration(&mut self, record: IterRecord) {
        self.emit(EventKind::Iter(record));
    }

    /// Records an engine's end-of-traversal summary.
    pub fn engine_end(
        &mut self,
        engine: &'static str,
        outcome: &'static str,
        iterations: u64,
        states: Option<f64>,
        peak_nodes: u64,
        dur_us: u64,
    ) {
        self.emit(EventKind::EngineEnd {
            engine: engine.into(),
            outcome: outcome.into(),
            iterations,
            states,
            peak_nodes,
            dur_us,
        });
    }

    /// Records a tripped resource ceiling (real or fault-injected).
    pub fn limit(&mut self, engine: &'static str, kind: LimitKind, iterations: u64) {
        self.emit(EventKind::Limit {
            engine: engine.into(),
            kind,
            iterations,
        });
    }

    /// Records a cancelled (or skipped) racing lane.
    pub fn cancel(&mut self, engine: &'static str) {
        self.emit(EventKind::Cancel {
            engine: engine.into(),
        });
    }

    /// Records the winning racing lane.
    pub fn winner(&mut self, engine: &'static str) {
        self.emit(EventKind::Winner {
            engine: engine.into(),
        });
    }

    /// Records a dynamic variable reorder (sift pass) with its
    /// before/after live-node counts.
    pub fn reorder(
        &mut self,
        engine: &'static str,
        iteration: u64,
        before: u64,
        after: u64,
        dur_us: u64,
    ) {
        self.emit(EventKind::Reorder {
            engine: engine.into(),
            iteration,
            before,
            after,
            dur_us,
        });
    }

    /// Records one budget-escalation round.
    pub fn round(
        &mut self,
        engine: &'static str,
        round: u64,
        outcome: &'static str,
        resumed: bool,
        node_limit: Option<u64>,
        time_limit_us: Option<u64>,
    ) {
        self.emit(EventKind::Round {
            engine: engine.into(),
            round,
            outcome: outcome.into(),
            resumed,
            node_limit,
            time_limit_us,
        });
    }

    /// Merges a lane's collected stream into this tracer: every event is
    /// re-stamped with this stream's sequence numbers and tagged with
    /// `lane`; the lane-relative `t_us` values are preserved (each lane
    /// has its own epoch — document readers group by `lane` before
    /// comparing times).
    pub fn ingest(&mut self, lane: u64, events: Vec<Event>) {
        for mut event in events {
            event.seq = self.seq;
            event.lane = Some(lane);
            self.seq += 1;
            self.sink.emit(&event);
        }
    }

    /// Retrieves everything a retaining sink buffered (collector/ring).
    pub fn drain(&mut self) -> Vec<Event> {
        self.sink.drain()
    }

    /// Closes any stray spans and flushes the sink. Call when the traced
    /// activity ends; dropping without finishing loses buffered output
    /// for buffered sinks.
    pub fn finish(&mut self) {
        while let Some(span) = self.stack.pop() {
            let dur_us = self.now_us().saturating_sub(span.start_us);
            self.emit(EventKind::SpanClose {
                id: span.id,
                kind: span.kind,
                name: span.name.clone(),
                dur_us,
                delta: Counters::new(),
            });
        }
        self.sink.flush();
    }

    /// Returns (and clears) the sink's latched write error, if any —
    /// check after [`Tracer::finish`]. A trace that silently lost its
    /// tail (full disk mid-run) reports here so the CLI can exit
    /// nonzero instead of pretending the trace is complete.
    pub fn take_error(&mut self) -> Option<std::io::Error> {
        self.sink.take_error()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("seq", &self.seq)
            .field("open_spans", &self.stack.len())
            .field("sample_every", &self.sample_every)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(t: &mut Tracer) -> Vec<Event> {
        t.drain()
    }

    #[test]
    fn spans_nest_and_link_parents() {
        let mut t = Tracer::collector(1);
        t.meta("test");
        let run = t.open_span(SpanKind::Run, "cell", Counters::new());
        let engine = t.open_span(SpanKind::Engine, "BFV", Counters::new().with("mk", 5.0));
        assert_eq!(t.open_spans(), 2);
        t.close_span(engine, &Counters::new().with("mk", 9.0));
        t.close_span(run, &Counters::new());
        let events = collect(&mut t);
        // meta, open run, open engine, close engine, close run.
        assert_eq!(events.len(), 5);
        let (run_id, engine_id) = match (&events[1].kind, &events[2].kind) {
            (
                EventKind::SpanOpen {
                    id: r,
                    parent: None,
                    ..
                },
                EventKind::SpanOpen {
                    id: e,
                    parent: Some(p),
                    ..
                },
            ) => {
                assert_eq!(p, r, "engine span's parent is the run span");
                (*r, *e)
            }
            other => panic!("unexpected opens: {other:?}"),
        };
        match &events[3].kind {
            EventKind::SpanClose { id, delta, .. } => {
                assert_eq!(*id, engine_id);
                assert_eq!(delta.get("mk"), Some(4.0));
            }
            other => panic!("expected engine close, got {other:?}"),
        }
        match &events[4].kind {
            EventKind::SpanClose { id, .. } => assert_eq!(*id, run_id),
            other => panic!("expected run close, got {other:?}"),
        }
        // Sequence numbers are dense and ordered.
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        // Timestamps are monotonic in sequence order (same epoch).
        assert!(events.windows(2).all(|w| w[0].t_us <= w[1].t_us));
    }

    #[test]
    fn closing_an_outer_span_closes_inner_spans_first() {
        let mut t = Tracer::collector(1);
        let run = t.open_span(SpanKind::Run, "r", Counters::new());
        let _engine = t.open_span(SpanKind::Engine, "e", Counters::new());
        let _iter = t.open_span(SpanKind::Iteration, "i", Counters::new());
        t.close_span(run, &Counters::new());
        assert_eq!(t.open_spans(), 0);
        let events = collect(&mut t);
        let closes: Vec<&str> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::SpanClose { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        // Inner spans close before outer ones: proper nesting preserved.
        assert_eq!(closes, vec!["i", "e", "r"]);
    }

    #[test]
    fn closing_twice_is_a_no_op() {
        let mut t = Tracer::collector(1);
        let s = t.open_span(SpanKind::Run, "r", Counters::new());
        t.close_span(s, &Counters::new());
        t.close_span(s, &Counters::new());
        assert_eq!(collect(&mut t).len(), 2); // one open + one close
    }

    #[test]
    fn sampling_keeps_first_and_every_nth() {
        let t = Tracer::collector(3);
        let recorded: Vec<u64> = (1..=10).filter(|&i| t.should_record(i)).collect();
        assert_eq!(recorded, vec![1, 3, 6, 9]);
        let every = Tracer::collector(1);
        assert!((1..=5).all(|i| every.should_record(i)));
        // Stride 0 degrades to 1 rather than dividing by zero.
        assert_eq!(Tracer::collector(0).sample_every(), 1);
    }

    #[test]
    fn ingest_restamps_seq_and_tags_lane() {
        let mut lane = Tracer::collector(1);
        lane.meta("lane");
        lane.cancel("CBM");
        let lane_events = lane.drain();
        let mut main = Tracer::collector(1);
        main.meta("main");
        main.ingest(3, lane_events);
        let events = main.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].lane, None);
        assert_eq!(events[1].lane, Some(3));
        assert_eq!(events[2].lane, Some(3));
        assert_eq!(events[2].seq, 2, "seq restamped into the main stream");
    }

    #[test]
    fn finish_closes_stray_spans() {
        let mut t = Tracer::collector(1);
        t.open_span(SpanKind::Run, "r", Counters::new());
        t.open_span(SpanKind::Engine, "e", Counters::new());
        t.finish();
        assert_eq!(t.open_spans(), 0);
        let closes = t
            .drain()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SpanClose { .. }))
            .count();
        assert_eq!(closes, 2);
    }
}
