//! Durable-checkpoint round-trip over every engine × representation
//! lane: interrupt a run mid-traversal via the periodic checkpoint
//! hook, persist the checkpoint through the binary container format,
//! re-intern it into a **fresh manager**, resume, and require the
//! resumed fixed point to be semantically identical to an
//! uninterrupted baseline — equal state counts for every lane, and
//! graph-level equality of the reached characteristic function (plus a
//! clean `bfvr-audit` pass over the resumed set) for the exact lanes.

use std::cell::Cell;
use std::path::PathBuf;
use std::rc::Rc;

use bfvr_audit::{run_passes, AuditTargets, Report};
use bfvr_netlist::generators;
use bfvr_reach::portfolio::Lane;
use bfvr_reach::{resume, run_repr, Outcome, ReachOptions};
use bfvr_serve::{fnv1a64, level_map_of, read_checkpoint, write_checkpoint, CkptMeta};
use bfvr_sim::{EncodedFsm, OrderHeuristic};

/// A collision-free scratch path under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bfvr-ckpt-rt-{}-{name}.ckpt", std::process::id()))
}

/// The iteration the mid-run checkpoint is taken at: late enough that
/// real state exists, early enough that resume has real work left.
const CKPT_AT: usize = 2;

fn roundtrip_lane(lane: Lane) {
    let net = generators::counter(5);
    let circuit = "gen:counter:5".to_string();
    let bench = bfvr_netlist::bench::write(&net).unwrap();
    let fingerprint = fnv1a64(bench.as_bytes());

    // Uninterrupted reference run.
    let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
    let opts = ReachOptions::default();
    let baseline = run_repr(lane.engine, lane.repr, &mut m, &fsm, &opts);
    assert_eq!(baseline.outcome, Outcome::FixedPoint, "{lane:?} baseline");
    let expect_states = baseline.reached_states.unwrap();
    let expect_iters = baseline.iterations;
    assert!(
        expect_iters > CKPT_AT,
        "{lane:?}: baseline too short to interrupt at {CKPT_AT}"
    );
    // Keep the baseline's reached χ portable for the graph-equality
    // check in the resumed manager.
    let baseline_dag = baseline
        .reached_chi
        .as_ref()
        .map(|f| m.export_dag(&[f.bdd()]));

    // Interrupted run: the checkpoint hook persists the state at
    // iteration CKPT_AT; the run itself continues to its fixed point —
    // what matters is that the *persisted mid-run snapshot* resumes to
    // the same answer in a different process's manager.
    let path = scratch(lane.label());
    let (mut m1, fsm1) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
    let wrote = Rc::new(Cell::new(false));
    let hook_wrote = Rc::clone(&wrote);
    let hook_path = path.clone();
    let hook_circuit = circuit.clone();
    let opts1 = ReachOptions {
        checkpoint_every: Some(1),
        checkpoint_hook: Some(Rc::new(move |m, cp| {
            if cp.iterations != CKPT_AT || hook_wrote.get() {
                return;
            }
            let meta = CkptMeta {
                engine: cp.engine,
                repr: cp.repr,
                order: "s1".to_string(),
                circuit: hook_circuit.clone(),
                fingerprint,
                num_vars: m.num_vars(),
                level2var: level_map_of(m),
                iterations: cp.iterations,
            };
            write_checkpoint(&hook_path, m, &meta, cp.state()).unwrap();
            hook_wrote.set(true);
        })),
        ..ReachOptions::default()
    };
    let r1 = run_repr(lane.engine, lane.repr, &mut m1, &fsm1, &opts1);
    assert_eq!(r1.outcome, Outcome::FixedPoint, "{lane:?} hooked run");
    assert!(wrote.get(), "{lane:?}: checkpoint hook never fired");
    drop((m1, fsm1));

    // Re-intern into a fresh manager (a new process in miniature) and
    // resume to the fixed point.
    let (mut m2, fsm2) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
    let (meta, cp) = read_checkpoint(&path, &mut m2).unwrap();
    assert_eq!(meta.engine, lane.engine, "{lane:?} meta engine");
    assert_eq!(meta.repr, lane.repr, "{lane:?} meta repr");
    assert_eq!(meta.iterations, CKPT_AT, "{lane:?} meta iterations");
    assert_eq!(meta.circuit, circuit, "{lane:?} meta circuit");
    assert_eq!(meta.fingerprint, fingerprint, "{lane:?} meta fingerprint");
    let resumed = resume(&mut m2, &fsm2, &opts, cp);
    assert_eq!(resumed.outcome, Outcome::FixedPoint, "{lane:?} resume");
    assert_eq!(
        resumed.reached_states,
        Some(expect_states),
        "{lane:?}: resumed fixed point differs from baseline"
    );
    assert!(
        resumed.iterations >= expect_iters,
        "{lane:?}: cumulative iterations lost progress"
    );

    // Exact lanes: graph-level equivalence of the reached χ (canonical
    // ROBDDs in one manager are equal iff identical), then a full
    // bfvr-audit pass over the resumed set.
    if !lane.over_approximates() {
        let resumed_chi = resumed.reached_chi.as_ref().unwrap();
        let imported = m2.import_dag(&baseline_dag.unwrap()).unwrap();
        assert_eq!(
            imported[0],
            resumed_chi.bdd(),
            "{lane:?}: resumed reached set is not the baseline set"
        );
        let space = fsm2.space();
        let mut report = Report::new();
        run_passes(
            &mut m2,
            &AuditTargets::for_chi(&space, resumed_chi.bdd()),
            &format!("{}/resumed", lane.label()),
            &mut report,
        )
        .unwrap();
        assert!(report.is_empty(), "{lane:?}:\n{}", report.render());
    }

    let _ = std::fs::remove_file(&path);
}

#[test]
fn every_lane_roundtrips_through_a_fresh_manager() {
    let lanes = Lane::all_lanes();
    assert_eq!(lanes.len(), 9, "lane matrix changed; update this test");
    for lane in lanes {
        roundtrip_lane(lane);
    }
}

/// A checkpoint written mid-run *after dynamic sifting permuted the
/// variable order* must still resume — in a fresh manager encoded under
/// the original static order — to the same fixed point as a plain,
/// never-sifted run. The container's `level2var` map is what carries the
/// permutation across: `read_checkpoint` replays it onto the fresh
/// manager before re-interning the level-labeled DAG.
#[test]
fn permuted_order_checkpoint_resumes_to_the_static_count() {
    let net = generators::queue_controller(4);
    let circuit = "gen:queue:4".to_string();
    let bench = bfvr_netlist::bench::write(&net).unwrap();
    let fingerprint = fnv1a64(bench.as_bytes());
    let order = OrderHeuristic::Declaration;

    // Plain, never-sifted baseline.
    let (mut m0, fsm0) = EncodedFsm::encode(&net, order).unwrap();
    let lane = Lane::native(bfvr_reach::EngineKind::Monolithic);
    let baseline = run_repr(
        lane.engine,
        lane.repr,
        &mut m0,
        &fsm0,
        &ReachOptions::default(),
    );
    assert_eq!(baseline.outcome, Outcome::FixedPoint);
    let expect_states = baseline.reached_states.unwrap();
    drop((m0, fsm0));

    // Sifted run with a checkpoint hook that persists the *first*
    // snapshot taken while the manager's order is actually permuted.
    let path = scratch("permuted");
    let (mut m1, fsm1) = EncodedFsm::encode(&net, order).unwrap();
    let wrote = Rc::new(Cell::new(false));
    let hook_wrote = Rc::clone(&wrote);
    let hook_path = path.clone();
    let hook_circuit = circuit.clone();
    let opts1 = ReachOptions {
        sift: true,
        sift_trigger: 1.2,
        checkpoint_every: Some(1),
        checkpoint_hook: Some(Rc::new(move |m, cp| {
            if hook_wrote.get() || !m.order_is_permuted() {
                return;
            }
            let meta = CkptMeta {
                engine: cp.engine,
                repr: cp.repr,
                order: "decl".to_string(),
                circuit: hook_circuit.clone(),
                fingerprint,
                num_vars: m.num_vars(),
                level2var: level_map_of(m),
                iterations: cp.iterations,
            };
            assert!(
                !meta.level2var.is_empty(),
                "permuted manager produced an identity level map"
            );
            write_checkpoint(&hook_path, m, &meta, cp.state()).unwrap();
            hook_wrote.set(true);
        })),
        ..ReachOptions::default()
    };
    let r1 = run_repr(lane.engine, lane.repr, &mut m1, &fsm1, &opts1);
    assert_eq!(r1.outcome, Outcome::FixedPoint, "sifted run");
    assert!(r1.reorders > 0, "sifting never fired; checkpoint untested");
    assert!(wrote.get(), "no checkpoint written under a permuted order");
    assert_eq!(
        r1.reached_states,
        Some(expect_states),
        "sifted run disagrees with the static baseline"
    );
    drop((m1, fsm1));

    // Fresh manager under the original static order: read_checkpoint
    // must replay the recorded permutation, and a plain (sift-off)
    // resume must land on the static count.
    let (mut m2, fsm2) = EncodedFsm::encode(&net, order).unwrap();
    assert!(!m2.order_is_permuted());
    let (meta, cp) = read_checkpoint(&path, &mut m2).unwrap();
    assert!(
        !meta.level2var.is_empty(),
        "checkpoint lost its level map in the container round-trip"
    );
    assert!(
        m2.order_is_permuted(),
        "read_checkpoint did not replay the permutation"
    );
    let resumed = resume(&mut m2, &fsm2, &ReachOptions::default(), cp);
    assert_eq!(resumed.outcome, Outcome::FixedPoint, "resume");
    assert_eq!(
        resumed.reached_states,
        Some(expect_states),
        "resumed permuted-order checkpoint missed the static count"
    );

    let _ = std::fs::remove_file(&path);
}
