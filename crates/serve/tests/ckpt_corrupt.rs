//! Corrupt-checkpoint fuzz: the loader's robustness contract is that a
//! malformed file of **any** shape comes back as a structured
//! [`CkptError`] — never a panic, never a half-imported manager.
//!
//! The sweep starts from one genuine checkpoint produced by a real
//! interrupted run, then attacks it: truncation at every prefix length,
//! a bit flip at every byte, a bumped (re-checksummed) version, foreign
//! magic, checksum-valid trailing garbage, and a context mismatch
//! (loading into a manager of the wrong width).

use std::cell::RefCell;
use std::rc::Rc;

use bfvr_netlist::generators;
use bfvr_reach::{run_repr, EngineKind, Outcome, ReachOptions};
use bfvr_serve::{
    decode_checkpoint, decode_meta, encode_checkpoint, fnv1a64, level_map_of, CkptError, CkptMeta,
};
use bfvr_setrepr::ReprKind;
use bfvr_sim::{EncodedFsm, OrderHeuristic};

/// One genuine checkpoint byte image (BFV lane, counter(5), iteration 2)
/// plus a manager of the width it expects and one of a different width.
fn genuine() -> (Vec<u8>, bfvr_bdd::BddManager, bfvr_bdd::BddManager) {
    let net = generators::counter(5);
    let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
    let bytes = Rc::new(RefCell::new(Vec::new()));
    let sink = Rc::clone(&bytes);
    let opts = ReachOptions {
        checkpoint_every: Some(1),
        checkpoint_hook: Some(Rc::new(move |m, cp| {
            if cp.iterations != 2 || !sink.borrow().is_empty() {
                return;
            }
            let meta = CkptMeta {
                engine: cp.engine,
                repr: cp.repr,
                order: "s1".to_string(),
                circuit: "gen:counter:5".to_string(),
                fingerprint: 0x1234_5678_9abc_def0,
                num_vars: m.num_vars(),
                level2var: level_map_of(m),
                iterations: cp.iterations,
            };
            *sink.borrow_mut() = encode_checkpoint(m, &meta, cp.state());
        })),
        ..ReachOptions::default()
    };
    let r = run_repr(EngineKind::Bfv, ReprKind::Bfv, &mut m, &fsm, &opts);
    assert_eq!(r.outcome, Outcome::FixedPoint);
    drop(r);
    let bytes = bytes.borrow().clone();
    assert!(!bytes.is_empty(), "hook never captured a checkpoint");

    let (fresh, _) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
    let (narrow, _) =
        EncodedFsm::encode(&generators::counter(3), OrderHeuristic::DfsFanin).unwrap();
    (bytes, fresh, narrow)
}

/// Recomputes the trailing checksum after a deliberate mutation, so the
/// mutation reaches the structural validators instead of dying at the
/// checksum gate.
fn reseal(bytes: &mut [u8]) {
    let n = bytes.len();
    let sum = fnv1a64(&bytes[..n - 8]);
    bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn pristine_bytes_decode() {
    let (bytes, mut m, _) = genuine();
    decode_meta(&bytes).unwrap();
    decode_checkpoint(&bytes, &mut m).unwrap();
}

#[test]
fn truncation_at_every_length_is_structured() {
    let (bytes, mut m, _) = genuine();
    for len in 0..bytes.len() {
        let cut = &bytes[..len];
        let meta_err = decode_meta(cut).err();
        let full_err = decode_checkpoint(cut, &mut m).err();
        assert!(
            meta_err.is_some() && full_err.is_some(),
            "prefix of {len}/{} bytes was accepted",
            bytes.len()
        );
    }
}

#[test]
fn bit_flip_at_every_byte_is_structured() {
    let (bytes, mut m, _) = genuine();
    for i in 0..bytes.len() {
        let mut evil = bytes.clone();
        evil[i] ^= 0x40;
        let err = decode_checkpoint(&evil, &mut m).expect_err("bit flip accepted");
        // A flip in the magic reads as a foreign file; anywhere else the
        // trailing checksum catches it before any field is trusted.
        match (i, err) {
            (0..=7, CkptError::BadMagic | CkptError::Corrupt) => {}
            (_, CkptError::Corrupt) => {}
            (_, other) => panic!("byte {i}: unexpected error {other:?}"),
        }
    }
}

#[test]
fn future_version_is_refused_by_number() {
    let (mut bytes, mut m, _) = genuine();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    reseal(&mut bytes);
    match decode_checkpoint(&bytes, &mut m) {
        Err(CkptError::Version { found: 99 }) => {}
        other => panic!("expected Version {{ found: 99 }}, got {other:?}"),
    }
}

#[test]
fn foreign_magic_is_refused() {
    let (mut bytes, mut m, _) = genuine();
    bytes[..8].copy_from_slice(b"GIF89a\0\0");
    match decode_checkpoint(&bytes, &mut m) {
        Err(CkptError::BadMagic) => {}
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn checksum_valid_trailing_garbage_is_malformed() {
    let (bytes, mut m, _) = genuine();
    let mut evil = bytes;
    let n = evil.len();
    // Splice four garbage bytes between state and checksum, then reseal.
    evil.splice(n - 8..n - 8, [0xde, 0xad, 0xbe, 0xef]);
    reseal(&mut evil);
    match decode_checkpoint(&evil, &mut m) {
        Err(CkptError::Malformed(_)) => {}
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn wrong_width_manager_is_a_mismatch() {
    let (bytes, _, mut narrow) = genuine();
    match decode_checkpoint(&bytes, &mut narrow) {
        Err(CkptError::Mismatch(_)) => {}
        other => panic!("expected Mismatch, got {other:?}"),
    }
}

#[test]
fn io_and_read_paths_never_panic_on_hostile_files() {
    let dir = std::env::temp_dir().join(format!("bfvr-ckpt-fuzz-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (bytes, mut m, _) = genuine();

    // A missing file is an Io error, not a panic.
    assert!(matches!(
        bfvr_serve::read_checkpoint(&dir.join("absent.ckpt"), &mut m),
        Err(CkptError::Io(_))
    ));

    // Hostile on-disk contents: empty, tiny, text, and a torn genuine
    // prefix all fail structurally through the file-reading entrypoints.
    let hostile: [(&str, Vec<u8>); 4] = [
        ("empty", Vec::new()),
        ("tiny", vec![0x42; 5]),
        ("text", b"not a checkpoint at all\n".to_vec()),
        ("torn", bytes[..bytes.len() / 2].to_vec()),
    ];
    for (name, contents) in hostile {
        let p = dir.join(format!("{name}.ckpt"));
        std::fs::write(&p, &contents).unwrap();
        assert!(
            bfvr_serve::read_meta(&p).is_err(),
            "{name}: meta accepted hostile file"
        );
        assert!(
            bfvr_serve::read_checkpoint(&p, &mut m).is_err(),
            "{name}: checkpoint accepted hostile file"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
