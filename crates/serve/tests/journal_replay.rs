//! Journal replay semantics: idempotence across repeated replays and
//! repeated restarts, first-wins submission, terminal-state absorption,
//! and the crash model — exactly one torn trailing line is tolerated,
//! torn interior lines are structured errors.

use std::path::PathBuf;

use bfvr_obs::json::Value;
use bfvr_serve::{replay, JobPhase, JobSpec, Journal, JournalError};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bfvr-journal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}.jsonl"))
}

/// Writes a small but complete job history: submit two jobs, crash one,
/// checkpoint-resume it, finish both.
fn write_history(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let mut j = Journal::open(path).unwrap();
    for (id, prio) in [("a", 1u8), ("b", 5)] {
        let mut spec = JobSpec::new(id, "gen:s27");
        spec.priority = prio;
        j.append(id, "submitted", vec![("spec", spec.to_json())])
            .unwrap();
    }
    j.append("a", "started", vec![("attempt", Value::Num(1.0))])
        .unwrap();
    j.append(
        "a",
        "failed",
        vec![("reason", Value::Str("child killed by signal 9".into()))],
    )
    .unwrap();
    j.append("a", "started", vec![("attempt", Value::Num(2.0))])
        .unwrap();
    j.append(
        "a",
        "checkpointed",
        vec![("file", Value::Str("a.ckpt".into()))],
    )
    .unwrap();
    j.append("a", "started", vec![("attempt", Value::Num(3.0))])
        .unwrap();
    j.append(
        "a",
        "done",
        vec![("states", Value::Num(6.0)), ("iterations", Value::Num(2.0))],
    )
    .unwrap();
    j.append("b", "started", vec![("attempt", Value::Num(1.0))])
        .unwrap();
    j.append(
        "b",
        "done",
        vec![
            ("states", Value::Num(272.0)),
            ("iterations", Value::Num(32.0)),
        ],
    )
    .unwrap();
}

#[test]
fn replay_is_idempotent_across_repeated_restarts() {
    let path = scratch("idempotent");
    write_history(&path);
    let bytes_before = std::fs::read(&path).unwrap();

    // N restarts: replaying and re-opening never mutates the file and
    // always folds to the same ledger.
    for round in 0..3 {
        let ledger = replay(&path).unwrap();
        assert_eq!(ledger.job_ids(), ["a", "b"], "round {round}");
        let a = ledger.get("a").unwrap();
        assert_eq!(a.phase, JobPhase::Done);
        assert_eq!(a.attempts, 3);
        assert_eq!(a.states, Some(6.0));
        assert_eq!(a.checkpoint.as_deref(), Some("a.ckpt"));
        let b = ledger.get("b").unwrap();
        assert_eq!(b.phase, JobPhase::Done);
        assert_eq!(b.states, Some(272.0));
        // Opening for append (what a restarting daemon does) is
        // read-only until something new happens.
        drop(Journal::open(&path).unwrap());
        assert_eq!(std::fs::read(&path).unwrap(), bytes_before, "round {round}");
    }
}

#[test]
fn resubmission_is_first_wins() {
    let path = scratch("first-wins");
    let _ = std::fs::remove_file(&path);
    let mut j = Journal::open(&path).unwrap();
    let mut first = JobSpec::new("dup", "gen:s27");
    first.priority = 9;
    j.append("dup", "submitted", vec![("spec", first.to_json())])
        .unwrap();
    let mut second = JobSpec::new("dup", "gen:queue:4");
    second.priority = 1;
    j.append("dup", "submitted", vec![("spec", second.to_json())])
        .unwrap();
    drop(j);

    let ledger = replay(&path).unwrap();
    assert_eq!(ledger.job_ids(), ["dup"]);
    let d = ledger.get("dup").unwrap();
    assert_eq!(d.spec.circuit, "gen:s27", "first submission wins");
    assert_eq!(d.spec.priority, 9);
}

#[test]
fn terminal_states_absorb_stragglers() {
    let path = scratch("absorb");
    write_history(&path);
    let mut j = Journal::open(&path).unwrap();
    // A worker's late events racing the terminal transition.
    j.append("a", "started", vec![("attempt", Value::Num(9.0))])
        .unwrap();
    j.append(
        "a",
        "failed",
        vec![("reason", Value::Str("late straggler".into()))],
    )
    .unwrap();
    drop(j);

    let a_state = replay(&path).unwrap();
    let a = a_state.get("a").unwrap();
    assert_eq!(a.phase, JobPhase::Done, "terminal state sticks");
    assert_eq!(a.states, Some(6.0));
    assert_eq!(a.attempts, 3, "straggler attempt not counted");
}

#[test]
fn one_torn_trailing_line_is_tolerated() {
    let path = scratch("torn-tail");
    write_history(&path);
    let mut bytes = std::fs::read(&path).unwrap();
    // Simulate a crash mid-append: half of one extra record, no newline.
    bytes.extend_from_slice(br#"{"seq":99,"t_ms":123,"job":"a","ev"#);
    std::fs::write(&path, &bytes).unwrap();

    let ledger = replay(&path).unwrap();
    assert_eq!(ledger.get("a").unwrap().phase, JobPhase::Done);

    // A restarting daemon appends *after* the torn bytes are dropped —
    // the journal stays replayable forever, not just once.
    let mut j = Journal::open(&path).unwrap();
    let spec = JobSpec::new("c", "gen:s27");
    j.append("c", "submitted", vec![("spec", spec.to_json())])
        .unwrap();
    drop(j);
    let ledger = replay(&path).unwrap();
    assert_eq!(ledger.get("c").unwrap().phase, JobPhase::Queued);
}

#[test]
fn torn_interior_line_is_a_structured_error() {
    let path = scratch("torn-middle");
    write_history(&path);
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    let torn = &lines[3][..lines[3].len() / 2];
    lines[3] = torn;
    std::fs::write(&path, lines.join("\n") + "\n").unwrap();

    match replay(&path) {
        Err(JournalError::Malformed { line, .. }) => assert_eq!(line, 4),
        other => panic!("expected Malformed at line 4, got {other:?}"),
    }
}

#[test]
fn missing_journal_is_an_empty_ledger() {
    let path = scratch("absent-never-created");
    let _ = std::fs::remove_file(&path);
    let ledger = replay(&path).unwrap();
    assert!(ledger.job_ids().is_empty());
    assert_eq!(ledger.next_seq(), 0);
}
