//! Supervisor policy, exercised through scripted [`JobRunner`]s — no
//! child processes: crash → backoff → retry, poison-job quarantine,
//! fatal fast-fail, checkpoint → requeue → resume, load shedding, and
//! journal-driven recovery across a simulated daemon restart.

use std::path::{Path, PathBuf};
use std::time::Duration;

use bfvr_obs::json::Value;
use bfvr_serve::{
    replay, JobPhase, JobRunner, JobSpec, Journal, RunOutcome, Supervisor, SupervisorConfig,
};

/// A scratch pool directory (journal + checkpoint files).
fn pool(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bfvr-sup-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Fast-retry config: single worker makes scheduling deterministic.
fn cfg() -> SupervisorConfig {
    SupervisorConfig {
        workers: 1,
        max_attempts: 3,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(5),
        shed_after_crashes: 100,
        jitter_seed: 7,
    }
}

/// Scripted runner: each job id maps to a sequence of outcomes, one per
/// attempt (the last entry repeats).
struct Scripted {
    script: Vec<(&'static str, Vec<RunOutcome>)>,
}

impl Scripted {
    fn new(script: Vec<(&'static str, Vec<RunOutcome>)>) -> Self {
        Scripted { script }
    }
}

impl JobRunner for Scripted {
    fn run(
        &self,
        spec: &JobSpec,
        attempt: u32,
        _resume_from: Option<&Path>,
        ckpt_out: &Path,
    ) -> RunOutcome {
        let seq = self
            .script
            .iter()
            .find(|(id, _)| *id == spec.id)
            .map(|(_, s)| s.as_slice())
            .unwrap_or(&[]);
        let idx = (attempt as usize - 1).min(seq.len().saturating_sub(1));
        let outcome = seq.get(idx).cloned().unwrap_or(RunOutcome::Fatal {
            detail: "unscripted".to_string(),
        });
        // A checkpointed attempt must leave its durable file behind.
        if matches!(outcome, RunOutcome::Checkpointed) {
            std::fs::write(ckpt_out, b"stub").unwrap();
        }
        outcome
    }
}

fn done() -> RunOutcome {
    RunOutcome::Done {
        states: Some(6.0),
        iterations: Some(2),
    }
}

fn crashed() -> RunOutcome {
    RunOutcome::Crashed {
        detail: "child killed by signal 9".to_string(),
    }
}

#[test]
fn crash_retries_with_growing_attempts_then_completes() {
    let dir = pool("retry");
    let runner = Scripted::new(vec![("j1", vec![crashed(), crashed(), done()])]);
    let sup = Supervisor::new(&dir, cfg(), runner).unwrap();
    sup.submit(&JobSpec::new("j1", "gen:s27")).unwrap();
    sup.drain().unwrap();

    let ledger = replay(&dir.join("journal.jsonl")).unwrap();
    let j = ledger.get("j1").unwrap();
    assert_eq!(j.phase, JobPhase::Done);
    assert_eq!(j.attempts, 3);
    assert_eq!(j.states, Some(6.0));
    assert_eq!(j.iterations, Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn poison_job_is_quarantined_after_max_attempts() {
    let dir = pool("poison");
    let runner = Scripted::new(vec![("bad", vec![crashed()]), ("good", vec![done()])]);
    let sup = Supervisor::new(&dir, cfg(), runner).unwrap();
    sup.submit(&JobSpec::new("bad", "gen:s27")).unwrap();
    sup.submit(&JobSpec::new("good", "gen:s27")).unwrap();
    sup.drain().unwrap();

    let ledger = replay(&dir.join("journal.jsonl")).unwrap();
    let bad = ledger.get("bad").unwrap();
    assert_eq!(bad.phase, JobPhase::Quarantined);
    assert_eq!(bad.attempts, 3, "quarantine respects max_attempts");
    assert!(bad.reason.as_deref().unwrap().contains("poison"));
    // The poison job never starves its neighbour.
    assert_eq!(ledger.get("good").unwrap().phase, JobPhase::Done);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fatal_failure_is_terminal_without_retry() {
    let dir = pool("fatal");
    let runner = Scripted::new(vec![(
        "j1",
        vec![RunOutcome::Fatal {
            detail: "unsupported lane".to_string(),
        }],
    )]);
    let sup = Supervisor::new(&dir, cfg(), runner).unwrap();
    sup.submit(&JobSpec::new("j1", "gen:s27")).unwrap();
    sup.drain().unwrap();

    let ledger = replay(&dir.join("journal.jsonl")).unwrap();
    let j = ledger.get("j1").unwrap();
    assert_eq!(j.phase, JobPhase::Failed);
    assert_eq!(j.attempts, 1, "fatal outcomes must not burn retries");
    assert_eq!(j.reason.as_deref(), Some("unsupported lane"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpointed_attempt_requeues_and_resumes_from_its_file() {
    let dir = pool("ckpt");
    let runner = Scripted::new(vec![("j1", vec![RunOutcome::Checkpointed, done()])]);
    let sup = Supervisor::new(&dir, cfg(), runner).unwrap();
    sup.submit(&JobSpec::new("j1", "gen:queue:4")).unwrap();
    sup.drain().unwrap();

    let ledger = replay(&dir.join("journal.jsonl")).unwrap();
    let j = ledger.get("j1").unwrap();
    assert_eq!(j.phase, JobPhase::Done);
    assert_eq!(j.attempts, 2);
    assert!(
        j.checkpoint.as_deref().unwrap().ends_with("j1.ckpt"),
        "checkpoint path journaled"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_attempt_receives_the_crash_survivor_checkpoint() {
    // A crashed attempt that managed a periodic durable write resumes
    // from that file on retry (the supervisor probes ckpt_out.exists()).
    let dir = pool("crash-resume");
    struct CrashThenCheck;
    impl JobRunner for CrashThenCheck {
        fn run(
            &self,
            _spec: &JobSpec,
            attempt: u32,
            resume_from: Option<&Path>,
            ckpt_out: &Path,
        ) -> RunOutcome {
            if attempt == 1 {
                // Simulate a periodic checkpoint flushed before death.
                std::fs::write(ckpt_out, b"survivor").unwrap();
                return crashed();
            }
            // The ledger can only show Done if the retry was handed the
            // survivor file — a missing handoff is a journaled failure.
            if resume_from.is_some_and(|p| p.ends_with("j1.ckpt")) {
                done()
            } else {
                RunOutcome::Fatal {
                    detail: "retry was not resumed from the survivor checkpoint".to_string(),
                }
            }
        }
    }
    let sup = Supervisor::new(&dir, cfg(), CrashThenCheck).unwrap();
    sup.submit(&JobSpec::new("j1", "gen:queue:4")).unwrap();
    sup.drain().unwrap();

    let ledger = replay(&dir.join("journal.jsonl")).unwrap();
    let j = ledger.get("j1").unwrap();
    assert_eq!(j.phase, JobPhase::Done, "reason: {:?}", j.reason);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repeated_crashes_shed_the_lowest_priority_queued_job() {
    let dir = pool("shed");
    // One incurable crasher and two bystanders that would succeed. With
    // a single worker, a shed threshold of 2 and the crasher holding the
    // highest priority, the pool sheds a bystander before ever reaching
    // it — and sheds the *lowest* priority one.
    let runner = Scripted::new(vec![
        ("crasher", vec![crashed()]),
        ("mid", vec![done()]),
        ("low", vec![done()]),
    ]);
    let mut c = cfg();
    c.max_attempts = 2;
    c.shed_after_crashes = 2;
    c.backoff_base = Duration::ZERO; // retries beat the bystanders to the worker
    let sup = Supervisor::new(&dir, c, runner).unwrap();
    let mut crasher = JobSpec::new("crasher", "gen:s27");
    crasher.priority = 9;
    let mut mid = JobSpec::new("mid", "gen:s27");
    mid.priority = 5;
    let mut low = JobSpec::new("low", "gen:s27");
    low.priority = 1;
    sup.submit(&crasher).unwrap();
    sup.submit(&mid).unwrap();
    sup.submit(&low).unwrap();
    sup.drain().unwrap();

    let ledger = replay(&dir.join("journal.jsonl")).unwrap();
    assert_eq!(ledger.get("crasher").unwrap().phase, JobPhase::Quarantined);
    assert_eq!(
        ledger.get("low").unwrap().phase,
        JobPhase::Shed,
        "the lowest-priority queued job pays for the pool's crashing"
    );
    assert_eq!(ledger.get("mid").unwrap().phase, JobPhase::Done);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_requeues_interrupted_jobs_from_the_journal() {
    let dir = pool("restart");
    // Phase 1: a runner whose process "dies" mid-job — scripted here as
    // a supervisor that records `started` and then is dropped without a
    // terminal event, exactly what a SIGKILLed daemon leaves behind.
    {
        let journal = dir.join("journal.jsonl");
        let mut j = Journal::open(&journal).unwrap();
        let spec = JobSpec::new("j1", "gen:s27");
        j.append("j1", "submitted", vec![("spec", spec.to_json())])
            .unwrap();
        j.append("j1", "started", vec![("attempt", Value::Num(1.0))])
            .unwrap();
    }
    // Phase 2: a fresh supervisor replays the journal; the orphaned
    // `running` job re-enters the queue and completes.
    let runner = Scripted::new(vec![("j1", vec![done()])]);
    let sup = Supervisor::new(&dir, cfg(), runner).unwrap();
    sup.drain().unwrap();

    let ledger = replay(&dir.join("journal.jsonl")).unwrap();
    let j = ledger.get("j1").unwrap();
    assert_eq!(j.phase, JobPhase::Done, "interrupted job recovered");
    assert!(j.attempts >= 2, "replayed attempt count carried forward");
    let _ = std::fs::remove_dir_all(&dir);
}
