//! Minimal POSIX signal plumbing, hand-declared (the workspace builds
//! offline with no external crates, so there is no `libc` to lean on).
//!
//! This is the **only** module in the workspace allowed to contain
//! `unsafe`: two foreign calls (`signal(2)` to install a handler,
//! `kill(2)` to signal a child) and a handler body that does nothing
//! but store into an atomic — the async-signal-safe minimum.
//!
//! On non-Unix targets everything degrades to inert stubs: handlers
//! never fire, `kill` reports failure, and callers fall back to their
//! cooperative paths.

use std::sync::atomic::{AtomicBool, Ordering};

/// Raised by the SIGINT/SIGTERM handler once either signal arrives.
/// Poll from a bridge loop (see `bfvr reach`'s graceful-interrupt path)
/// or check between jobs in the daemon.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// `SIGTERM`: the supervisor's polite stop request.
pub const SIGTERM: i32 = 15;
/// `SIGKILL`: unblockable kill, used by the fault-injection harness.
pub const SIGKILL: i32 = 9;
/// `SIGINT`: interactive interrupt.
pub const SIGINT: i32 = 2;

/// Whether SIGINT/SIGTERM has arrived since [`install_handlers`].
#[must_use]
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Clears the interrupt latch (tests; multi-phase CLI commands).
pub fn reset_interrupted() {
    INTERRUPTED.store(false, Ordering::SeqCst);
}

/// Marks the process interrupted — the same latch the real handlers
/// set, so non-Unix targets (and tests) can drive the graceful path.
pub fn raise_interrupted() {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::{AtomicBool, Ordering, INTERRUPTED, SIGINT, SIGTERM};

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        fn kill(pid: i32, sig: i32) -> i32;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a single atomic store, nothing else.
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    pub fn install_handlers() {
        // Safety: `signal` with a handler that only stores an atomic is
        // the textbook async-signal-safe installation; the handler
        // address stays valid for the life of the process.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
        // Not used on this path, but keeps the import honest.
        let _: &AtomicBool = &INTERRUPTED;
    }

    pub fn kill_process(pid: u32, sig: i32) -> bool {
        let Ok(pid) = i32::try_from(pid) else {
            return false;
        };
        // Safety: plain syscall wrapper; no pointers cross the boundary.
        unsafe { kill(pid, sig) == 0 }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install_handlers() {}

    pub fn kill_process(_pid: u32, _sig: i32) -> bool {
        false
    }
}

/// Installs the SIGINT/SIGTERM → [`interrupted`] latch. Idempotent.
/// No-op off Unix.
pub fn install_handlers() {
    imp::install_handlers();
}

/// Sends `sig` to `pid`; `false` when the signal could not be sent
/// (dead pid, or a non-Unix target).
#[must_use]
pub fn kill_process(pid: u32, sig: i32) -> bool {
    imp::kill_process(pid, sig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_raises_and_resets() {
        reset_interrupted();
        assert!(!interrupted());
        raise_interrupted();
        assert!(interrupted());
        reset_interrupted();
        assert!(!interrupted());
    }

    #[cfg(unix)]
    #[test]
    fn kill_rejects_absurd_pids() {
        // Sending signal 0 probes liveness without delivering anything.
        assert!(!kill_process(u32::MAX, 0));
    }
}
