//! The crash-safe job store: an append-only JSONL journal of job state
//! transitions, replayed on startup to recover the queue.
//!
//! One line per transition, encoded with the `bfvr-obs` canonical JSON
//! encoder (sorted keys, deterministic numbers), so the journal is
//! greppable, diffable and byte-stable for identical histories:
//!
//! ```text
//! {"event":"submitted","job":"j1","seq":0,"spec":{...},"t_ms":0}
//! {"attempt":1,"event":"started","job":"j1","seq":1,"t_ms":3}
//! {"event":"checkpointed","file":"j1.ckpt","iterations":4,"job":"j1","seq":2,"t_ms":90}
//! {"event":"done","iterations":9,"job":"j1","seq":3,"states":272,"t_ms":130}
//! ```
//!
//! ## Crash model
//!
//! Appends go through a single `O_APPEND`-style writer and are flushed
//! per record. A crash can tear at most the **final** line, so
//! [`replay`] tolerates exactly one trailing malformed/partial line and
//! rejects garbage anywhere earlier ([`JournalError::Malformed`] with
//! the line number). Replay is a pure fold over events — replaying the
//! same file any number of times yields the same [`JobLedger`], which is
//! what makes repeated daemon restarts idempotent. [`Journal::open`]
//! additionally truncates a torn trailing record before appending, so
//! the one-torn-line allowance is never consumed by history: a daemon
//! that crashes mid-append on every run still leaves a journal whose
//! damage is confined to its final line.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read as _, Write as _};
use std::path::Path;

use bfvr_obs::json::{self, Value};

use crate::job::JobSpec;

/// A job's current position in the lifecycle state machine (the fold of
/// its journal events).
///
/// ```text
/// submitted ──► running ──► done
///     ▲            │  ├───► failed ──► (requeue | quarantined)
///     │            │  └───► checkpointed ─► running (resumed)
///     └── shed ◄───┘          (daemon restart: running ─► interrupted)
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobPhase {
    /// Submitted, waiting for a worker.
    Queued,
    /// A worker had it when the journal ends — on replay this means the
    /// daemon died mid-run; the job re-queues (from its checkpoint, if
    /// any).
    Running,
    /// Reached its fixed point; terminal.
    Done,
    /// Exhausted its retry budget or failed fatally; terminal.
    Failed,
    /// Poison job: quarantined after repeated worker deaths; terminal.
    Quarantined,
    /// Shed while degrading under load; terminal.
    Shed,
}

impl JobPhase {
    /// Whether no further transitions are possible.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobPhase::Done | JobPhase::Failed | JobPhase::Quarantined | JobPhase::Shed
        )
    }

    /// Journal/event label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Failed => "failed",
            JobPhase::Quarantined => "quarantined",
            JobPhase::Shed => "shed",
        }
    }
}

/// Replayed knowledge about one job.
#[derive(Clone, Debug)]
pub struct JobState {
    /// The submitted spec.
    pub spec: JobSpec,
    /// Current phase.
    pub phase: JobPhase,
    /// Attempts started so far.
    pub attempts: u32,
    /// Path of the job's last durable checkpoint, if one was journaled.
    pub checkpoint: Option<String>,
    /// Final reached-state count (set by `done`).
    pub states: Option<f64>,
    /// Final iteration count (set by `done`).
    pub iterations: Option<u64>,
    /// Last failure/quarantine/shed reason.
    pub reason: Option<String>,
}

/// The fold of a whole journal: every job ever submitted, in submission
/// order (`BTreeMap` over the submission sequence).
#[derive(Clone, Debug, Default)]
pub struct JobLedger {
    jobs: BTreeMap<String, JobState>,
    order: Vec<String>,
    next_seq: u64,
}

impl JobLedger {
    /// The job ids in submission order.
    #[must_use]
    pub fn job_ids(&self) -> &[String] {
        &self.order
    }

    /// Looks up one job.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<&JobState> {
        self.jobs.get(id)
    }

    /// The next journal sequence number (continues the replayed file).
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Jobs that need a worker after a restart: queued, plus any the
    /// crashed daemon left `running` (they restart from their last
    /// durable checkpoint when one was journaled).
    #[must_use]
    pub fn runnable(&self) -> Vec<&JobState> {
        self.order
            .iter()
            .filter_map(|id| self.jobs.get(id))
            .filter(|j| matches!(j.phase, JobPhase::Queued | JobPhase::Running))
            .collect()
    }

    /// Applies one event to the ledger (the single transition function
    /// used by both replay and the live daemon).
    fn apply(&mut self, rec: &Value) -> Result<(), &'static str> {
        let event = rec
            .get("event")
            .and_then(Value::as_str)
            .ok_or("missing event")?;
        let job = rec
            .get("job")
            .and_then(Value::as_str)
            .ok_or("missing job id")?;
        if let Some(seq) = rec.get("seq").and_then(Value::as_u64) {
            self.next_seq = self.next_seq.max(seq + 1);
        }
        if event == "submitted" {
            let spec_val = rec.get("spec").ok_or("submitted without spec")?;
            let spec = JobSpec::from_json(spec_val).ok_or("invalid job spec")?;
            // Re-submission of a known id is idempotent: first wins.
            if !self.jobs.contains_key(job) {
                self.order.push(job.to_string());
                self.jobs.insert(
                    job.to_string(),
                    JobState {
                        spec,
                        phase: JobPhase::Queued,
                        attempts: 0,
                        checkpoint: None,
                        states: None,
                        iterations: None,
                        reason: None,
                    },
                );
            }
            return Ok(());
        }
        let state = self.jobs.get_mut(job).ok_or("event for unknown job")?;
        if state.phase.is_terminal() {
            // Terminal states absorb stragglers (a worker's late event
            // racing a shed decision): replay stays idempotent.
            return Ok(());
        }
        match event {
            "started" => {
                state.phase = JobPhase::Running;
                if let Some(a) = rec.get("attempt").and_then(Value::as_u64) {
                    #[allow(clippy::cast_possible_truncation)]
                    {
                        state.attempts = state.attempts.max(a as u32);
                    }
                }
            }
            "checkpointed" => {
                if let Some(f) = rec.get("file").and_then(Value::as_str) {
                    state.checkpoint = Some(f.to_string());
                }
                // Still the worker's job; a later `started` resumes it.
                state.phase = JobPhase::Queued;
            }
            "done" => {
                state.phase = JobPhase::Done;
                state.states = rec.get("states").and_then(Value::as_num);
                state.iterations = rec.get("iterations").and_then(Value::as_u64);
            }
            "failed" => {
                state.phase = JobPhase::Queued;
                state.reason = rec.get("reason").and_then(Value::as_str).map(String::from);
                if rec.get("fatal").and_then(Value::as_bool) == Some(true) {
                    state.phase = JobPhase::Failed;
                }
            }
            "quarantined" => {
                state.phase = JobPhase::Quarantined;
                state.reason = rec.get("reason").and_then(Value::as_str).map(String::from);
            }
            "shed" => {
                state.phase = JobPhase::Shed;
                state.reason = rec.get("reason").and_then(Value::as_str).map(String::from);
            }
            _ => return Err("unknown event"),
        }
        Ok(())
    }
}

/// Why a journal could not be replayed.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A non-final line failed to parse or apply — the file is damaged
    /// beyond what the crash model allows.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o: {e}"),
            JournalError::Malformed { line, reason } => {
                write!(f, "journal line {line} is malformed: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Replays a journal file into a [`JobLedger`]. A missing file is an
/// empty ledger (first boot). Exactly one trailing torn line is
/// tolerated; see the module docs for the crash model.
///
/// # Errors
///
/// [`JournalError::Io`] on read failure, [`JournalError::Malformed`]
/// when a non-final line is damaged.
pub fn replay(path: &Path) -> Result<JobLedger, JournalError> {
    let mut ledger = JobLedger::default();
    let mut text = String::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_string(&mut text)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ledger),
        Err(e) => return Err(e.into()),
    }
    let lines: Vec<&str> = text.split('\n').collect();
    let last_content = lines.iter().rposition(|l| !l.trim().is_empty());
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = json::parse(line).map(|v| ledger.apply(&v).map_err(String::from));
        let failure = match parsed {
            Ok(Ok(())) => None,
            Ok(Err(reason)) => Some(reason),
            Err(e) => Some(e.to_string()),
        };
        if let Some(reason) = failure {
            // The final record may be torn by a crash mid-append; any
            // earlier damage violates the append-only crash model.
            if Some(i) == last_content {
                break;
            }
            return Err(JournalError::Malformed {
                line: i + 1,
                reason,
            });
        }
    }
    Ok(ledger)
}

/// The live, append-only journal writer. Owns the ledger it feeds, so
/// the daemon's in-memory view can never drift from what is on disk:
/// every [`Journal::append`] both persists and applies the event.
pub struct Journal {
    w: BufWriter<File>,
    ledger: JobLedger,
    start: std::time::Instant,
}

impl Journal {
    /// Opens (creating if needed) the journal at `path`, replaying any
    /// existing records first.
    ///
    /// # Errors
    ///
    /// Replay errors, or an open/append failure.
    pub fn open(path: &Path) -> Result<Journal, JournalError> {
        let ledger = replay(path)?;
        // Drop a torn trailing record before appending: replay already
        // ignored it (crash-mid-append model), and appending after the
        // torn bytes would weld two records into one corrupt interior
        // line, poisoning every later replay.
        match std::fs::read(path) {
            Ok(bytes) if !bytes.is_empty() && bytes.last() != Some(&b'\n') => {
                let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
                let f = OpenOptions::new().write(true).open(path)?;
                f.set_len(keep as u64)?;
                f.sync_all()?;
            }
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let f = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal {
            w: BufWriter::new(f),
            ledger,
            start: std::time::Instant::now(),
        })
    }

    /// The replayed + live ledger.
    #[must_use]
    pub fn ledger(&self) -> &JobLedger {
        &self.ledger
    }

    /// Appends one event. `fields` supplements the mandatory
    /// `seq`/`t_ms`/`job`/`event` envelope. The record is flushed before
    /// this returns — a reported append is on its way to disk.
    ///
    /// # Errors
    ///
    /// Write/flush failures (the daemon treats these as fatal: a job
    /// store that cannot record transitions must stop taking work), or
    /// an event the state machine rejects.
    pub fn append(
        &mut self,
        job: &str,
        event: &str,
        fields: Vec<(&'static str, Value)>,
    ) -> Result<(), JournalError> {
        let mut pairs = vec![
            ("seq", Value::Num(self.ledger.next_seq as f64)),
            (
                "t_ms",
                Value::Num(self.start.elapsed().as_millis().min(u128::from(u64::MAX)) as f64),
            ),
            ("job", Value::Str(job.to_string())),
            ("event", Value::Str(event.to_string())),
        ];
        pairs.extend(fields);
        let rec = json::obj(pairs);
        self.ledger
            .apply(&rec)
            .map_err(|reason| JournalError::Malformed {
                line: 0,
                reason: reason.to_string(),
            })?;
        self.w.write_all(rec.encode().as_bytes())?;
        self.w.write_all(b"\n")?;
        self.w.flush()?;
        Ok(())
    }
}
