//! The supervised worker pool: runs journaled jobs in child processes,
//! survives their deaths, and degrades gracefully when they keep dying.
//!
//! Policy, all journaled as it happens:
//!
//! * **Isolation** — each job runs in a spawned `bfvr` child (via
//!   [`ProcessRunner`]); a segfaulting or SIGKILLed job costs one worker
//!   slot for one attempt, never the daemon.
//! * **Timeouts** — a child exceeding the per-job wall-clock budget gets
//!   SIGTERM (it checkpoints and exits, see the CLI's graceful-interrupt
//!   path), then SIGKILL after a grace period.
//! * **Retry with backoff** — a crashed job re-queues with exponential
//!   backoff plus deterministic jitter; a checkpointed job re-queues
//!   immediately (it made durable progress) and resumes from its file.
//! * **Quarantine** — after `max_attempts` crashed attempts a job is
//!   declared poison and parked terminally.
//! * **Shedding** — when crashes keep coming pool-wide, the
//!   lowest-priority queued job is shed per trigger, protecting the
//!   high-priority work that still has a chance.

use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use bfvr_obs::json::{self, Value};

use crate::job::JobSpec;
use crate::journal::{Journal, JournalError};
use crate::signal::{kill_process, SIGKILL, SIGTERM};

/// What one attempt of one job came to.
#[derive(Clone, Debug, PartialEq)]
pub enum RunOutcome {
    /// Fixed point reached; the job is finished.
    Done {
        /// Reached-state count reported by the child.
        states: Option<f64>,
        /// Cumulative iterations reported by the child.
        iterations: Option<u64>,
    },
    /// The child stopped cleanly after writing a durable checkpoint
    /// (timeout, SIGTERM, or a tripped resource budget).
    Checkpointed,
    /// The child died without a clean exit (signal, panic, OOM-kill).
    Crashed {
        /// Human-readable cause.
        detail: String,
    },
    /// Structured failure that retrying cannot fix (bad spec, rejected
    /// checkpoint file).
    Fatal {
        /// Human-readable cause.
        detail: String,
    },
}

/// Runs one attempt of one job. [`ProcessRunner`] is the real
/// implementation; tests script outcomes to drive the supervisor's
/// policy paths without spawning processes.
pub trait JobRunner: Send + Sync {
    /// Executes `spec` (attempt `attempt`, 1-based). `resume_from` is
    /// the job's last durable checkpoint when it has one; `ckpt_out` is
    /// where this attempt must leave its own checkpoint if interrupted.
    fn run(
        &self,
        spec: &JobSpec,
        attempt: u32,
        resume_from: Option<&Path>,
        ckpt_out: &Path,
    ) -> RunOutcome;
}

/// Pool policy knobs.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Concurrent workers.
    pub workers: usize,
    /// Attempts before a crashing job is quarantined as poison.
    pub max_attempts: u32,
    /// Base retry delay; attempt `k` waits `base · 2^(k-1)` + jitter.
    pub backoff_base: Duration,
    /// Ceiling on the computed backoff (before jitter).
    pub backoff_cap: Duration,
    /// Pool-wide consecutive-crash count that triggers shedding one
    /// lowest-priority queued job.
    pub shed_after_crashes: u32,
    /// Seed for deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            workers: 2,
            max_attempts: 3,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(5),
            shed_after_crashes: 5,
            jitter_seed: 0x5eed,
        }
    }
}

/// One queued attempt.
struct Queued {
    id: String,
    priority: u8,
    attempt: u32,
    not_before: Instant,
    resume_from: Option<PathBuf>,
}

struct Inner {
    queue: Vec<Queued>,
    journal: Journal,
    consecutive_crashes: u32,
    in_flight: usize,
    fatal: Option<String>,
}

/// The worker pool. Create with [`Supervisor::new`], seed it from a
/// replayed ledger and/or [`Supervisor::submit`] calls, then
/// [`Supervisor::drain`] to run everything to a terminal state.
pub struct Supervisor<R: JobRunner> {
    cfg: SupervisorConfig,
    dir: PathBuf,
    runner: R,
    inner: Mutex<Inner>,
    wake: Condvar,
}

/// splitmix64 — the jitter generator (deterministic per job × attempt).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl<R: JobRunner> Supervisor<R> {
    /// A pool over `dir` (checkpoint/result files and the journal live
    /// there), replaying `dir/journal.jsonl` to recover prior state:
    /// queued and interrupted jobs re-enter the queue (resuming from
    /// their last durable checkpoint when one was journaled), terminal
    /// jobs stay terminal.
    ///
    /// # Errors
    ///
    /// Journal open/replay errors.
    pub fn new(dir: &Path, cfg: SupervisorConfig, runner: R) -> Result<Self, JournalError> {
        let journal = Journal::open(&dir.join("journal.jsonl"))?;
        let now = Instant::now();
        let mut queue = Vec::new();
        for job in journal.ledger().runnable() {
            queue.push(Queued {
                id: job.spec.id.clone(),
                priority: job.spec.priority,
                attempt: job.attempts,
                not_before: now,
                resume_from: job.checkpoint.clone().map(PathBuf::from),
            });
        }
        Ok(Supervisor {
            cfg,
            dir: dir.to_path_buf(),
            runner,
            inner: Mutex::new(Inner {
                queue,
                journal,
                consecutive_crashes: 0,
                in_flight: 0,
                fatal: None,
            }),
            wake: Condvar::new(),
        })
    }

    /// Journals and enqueues a new job. Re-submitting an existing id is
    /// a no-op (the journal's `submitted` event is first-wins).
    ///
    /// # Errors
    ///
    /// Journal append failure.
    pub fn submit(&self, spec: &JobSpec) -> Result<(), JournalError> {
        let mut inner = lock(&self.inner);
        if inner.journal.ledger().get(&spec.id).is_some() {
            return Ok(());
        }
        inner
            .journal
            .append(&spec.id, "submitted", vec![("spec", spec.to_json())])?;
        inner.queue.push(Queued {
            id: spec.id.clone(),
            priority: spec.priority,
            attempt: 0,
            not_before: Instant::now(),
            resume_from: None,
        });
        self.wake.notify_all();
        Ok(())
    }

    /// Runs workers until every job is terminal (drain mode — the shape
    /// both the CLI daemon and the smoke tests use; a long-lived daemon
    /// is drain in a loop around a submission channel).
    ///
    /// # Errors
    ///
    /// The first journal failure any worker hit: a job store that can
    /// no longer record transitions must stop taking work.
    pub fn drain(&self) -> Result<(), JournalError> {
        std::thread::scope(|s| {
            for _ in 0..self.cfg.workers.max(1) {
                s.spawn(|| self.worker());
            }
        });
        let inner = lock(&self.inner);
        match &inner.fatal {
            Some(msg) => Err(JournalError::Malformed {
                line: 0,
                reason: format!("supervisor stopped: {msg}"),
            }),
            None => Ok(()),
        }
    }

    /// One worker's loop: claim → run → record, until the pool is idle
    /// and the queue empty.
    fn worker(&self) {
        loop {
            let claimed = {
                let mut inner = lock(&self.inner);
                loop {
                    if inner.fatal.is_some() {
                        return;
                    }
                    let now = Instant::now();
                    // Highest priority among ready entries; FIFO within
                    // a priority (stable scan keeps submission order).
                    let ready = inner
                        .queue
                        .iter()
                        .enumerate()
                        .filter(|(_, q)| q.not_before <= now)
                        .max_by_key(|(i, q)| (q.priority, usize::MAX - i));
                    if let Some((idx, _)) = ready {
                        let mut q = inner.queue.remove(idx);
                        q.attempt += 1;
                        inner.in_flight += 1;
                        break Some(q);
                    }
                    if inner.queue.is_empty() && inner.in_flight == 0 {
                        // Nothing left anywhere: wake the others so they
                        // see the same emptiness and exit.
                        self.wake.notify_all();
                        return;
                    }
                    // Backoff timers pending or peers still running:
                    // sleep until something changes.
                    let (next, _) = self
                        .wake
                        .wait_timeout(inner, Duration::from_millis(20))
                        .unwrap_or_else(|e| e.into_inner());
                    inner = next;
                }
            };
            let Some(q) = claimed else { return };
            if let Err(e) = self.run_one(q) {
                let mut inner = lock(&self.inner);
                inner.fatal = Some(e.to_string());
                inner.in_flight -= 1;
                self.wake.notify_all();
                return;
            }
            let mut inner = lock(&self.inner);
            inner.in_flight -= 1;
            self.wake.notify_all();
        }
    }

    /// Runs one claimed attempt and journals its outcome.
    fn run_one(&self, q: Queued) -> Result<(), JournalError> {
        let spec = {
            let inner = lock(&self.inner);
            match inner.journal.ledger().get(&q.id) {
                Some(j) => j.spec.clone(),
                None => return Ok(()), // shed/unknown: nothing to do
            }
        };
        {
            let mut inner = lock(&self.inner);
            inner.journal.append(
                &q.id,
                "started",
                vec![("attempt", Value::Num(f64::from(q.attempt)))],
            )?;
        }
        let ckpt_out = self.dir.join(format!("{}.ckpt", q.id));
        let outcome = self
            .runner
            .run(&spec, q.attempt, q.resume_from.as_deref(), &ckpt_out);
        let mut inner = lock(&self.inner);
        match outcome {
            RunOutcome::Done { states, iterations } => {
                inner.consecutive_crashes = 0;
                let mut fields = Vec::new();
                if let Some(s) = states {
                    fields.push(("states", Value::Num(s)));
                }
                if let Some(i) = iterations {
                    fields.push(("iterations", Value::Num(i as f64)));
                }
                inner.journal.append(&q.id, "done", fields)?;
            }
            RunOutcome::Checkpointed => {
                inner.consecutive_crashes = 0;
                inner.journal.append(
                    &q.id,
                    "checkpointed",
                    vec![("file", Value::Str(ckpt_out.to_string_lossy().into_owned()))],
                )?;
                // Durable progress: back of the ready queue, no backoff.
                inner.queue.push(Queued {
                    id: q.id,
                    priority: q.priority,
                    attempt: q.attempt,
                    not_before: Instant::now(),
                    resume_from: Some(ckpt_out),
                });
            }
            RunOutcome::Crashed { detail } => {
                inner.consecutive_crashes += 1;
                if q.attempt >= self.cfg.max_attempts {
                    inner.journal.append(
                        &q.id,
                        "quarantined",
                        vec![(
                            "reason",
                            Value::Str(format!(
                                "poison job: {} crashed attempts (last: {detail})",
                                q.attempt
                            )),
                        )],
                    )?;
                } else {
                    inner
                        .journal
                        .append(&q.id, "failed", vec![("reason", Value::Str(detail))])?;
                    // Exponential backoff with deterministic jitter.
                    let shift = q.attempt.saturating_sub(1).min(16);
                    let base = self
                        .cfg
                        .backoff_base
                        .saturating_mul(1 << shift)
                        .min(self.cfg.backoff_cap);
                    let jitter_ns = if self.cfg.backoff_base.is_zero() {
                        0
                    } else {
                        mix64(
                            self.cfg
                                .jitter_seed
                                .wrapping_add(u64::from(q.attempt))
                                .wrapping_add(crate::ckpt::fnv1a64(q.id.as_bytes())),
                        ) % self.cfg.backoff_base.as_nanos().min(u128::from(u64::MAX)) as u64
                    };
                    let delay = base + Duration::from_nanos(jitter_ns);
                    // A crashed attempt may still have flushed a periodic
                    // checkpoint before dying: resume from it if present.
                    let resume = ckpt_out.exists().then_some(ckpt_out).or(q.resume_from);
                    inner.queue.push(Queued {
                        id: q.id,
                        priority: q.priority,
                        attempt: q.attempt,
                        not_before: Instant::now() + delay,
                        resume_from: resume,
                    });
                }
                if inner.consecutive_crashes >= self.cfg.shed_after_crashes {
                    self.shed_one(&mut inner)?;
                    inner.consecutive_crashes = 0;
                }
            }
            RunOutcome::Fatal { detail } => {
                inner.journal.append(
                    &q.id,
                    "failed",
                    vec![("reason", Value::Str(detail)), ("fatal", Value::Bool(true))],
                )?;
            }
        }
        self.wake.notify_all();
        Ok(())
    }

    /// Sheds the lowest-priority queued job (degrade-gracefully policy):
    /// the pool is burning attempts on crashes, so the job least likely
    /// to matter gives up its slot.
    fn shed_one(&self, inner: &mut Inner) -> Result<(), JournalError> {
        let victim = inner
            .queue
            .iter()
            .enumerate()
            .min_by_key(|(i, q)| (q.priority, usize::MAX - i))
            .map(|(i, _)| i);
        if let Some(i) = victim {
            let q = inner.queue.remove(i);
            inner.journal.append(
                &q.id,
                "shed",
                vec![(
                    "reason",
                    Value::Str("load shedding: pool crashing repeatedly".to_string()),
                )],
            )?;
        }
        Ok(())
    }
}

/// Recovers a poisoned mutex: the shared state is only ever mutated
/// under short, panic-free critical sections, so the data is sound even
/// if a worker thread panicked elsewhere.
fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ------------------------------------------------------------- processes

/// The real [`JobRunner`]: spawns `bfvr reach`/`bfvr resume` children
/// with durable-checkpoint flags, enforces the per-job wall-clock
/// timeout (SIGTERM, grace, SIGKILL), and maps exit status to
/// [`RunOutcome`] — exit 0 is done, exit [`EXIT_CHECKPOINTED`] is a
/// clean interrupted stop, death by signal is a crash.
pub struct ProcessRunner {
    /// The `bfvr` binary to spawn.
    pub bfvr_bin: PathBuf,
    /// Directory for per-job result files.
    pub dir: PathBuf,
    /// Per-job wall-clock budget; `None` is unlimited.
    pub job_timeout: Option<Duration>,
    /// SIGTERM-to-SIGKILL grace.
    pub term_grace: Duration,
}

/// Child exit code meaning "interrupted but checkpointed durably" (the
/// BSD `EX_TEMPFAIL` convention: try again later).
pub const EXIT_CHECKPOINTED: i32 = 75;

impl ProcessRunner {
    fn parse_result(path: &Path) -> RunOutcome {
        let Ok(text) = std::fs::read_to_string(path) else {
            return RunOutcome::Crashed {
                detail: "child exited 0 without a result file".to_string(),
            };
        };
        let Ok(v) = json::parse(text.trim()) else {
            return RunOutcome::Crashed {
                detail: "child result file is not valid JSON".to_string(),
            };
        };
        match v.get("outcome").and_then(Value::as_str) {
            Some("ok") => RunOutcome::Done {
                states: v.get("states").and_then(Value::as_num),
                iterations: v.get("iterations").and_then(Value::as_u64),
            },
            Some(other) => RunOutcome::Fatal {
                detail: format!("child reported outcome `{other}`"),
            },
            None => RunOutcome::Crashed {
                detail: "child result file lacks an outcome".to_string(),
            },
        }
    }
}

impl JobRunner for ProcessRunner {
    fn run(
        &self,
        spec: &JobSpec,
        attempt: u32,
        resume_from: Option<&Path>,
        ckpt_out: &Path,
    ) -> RunOutcome {
        let result_path = self.dir.join(format!("{}.result.json", spec.id));
        let _ = std::fs::remove_file(&result_path);
        let mut cmd = std::process::Command::new(&self.bfvr_bin);
        match resume_from {
            Some(from) => {
                cmd.arg("resume").arg("--from").arg(from);
            }
            None => {
                cmd.arg("reach")
                    .arg(&spec.circuit)
                    .arg("--engine")
                    .arg(&spec.engine)
                    .arg("--repr")
                    .arg(&spec.repr)
                    .arg("--order")
                    .arg(&spec.order);
            }
        }
        cmd.arg("--checkpoint-out")
            .arg(ckpt_out)
            .arg("--checkpoint-every")
            .arg(spec.checkpoint_every.max(1).to_string())
            .arg("--result-out")
            .arg(&result_path);
        if let Some(n) = spec.node_limit {
            cmd.arg("--node-limit").arg(n.to_string());
        }
        if let Some(t) = spec.time_limit_secs {
            cmd.arg("--time-limit").arg(t.to_string());
        }
        // The fault-injection harness: first attempt only, so the
        // supervised resume is what completes the job.
        if attempt == 1 {
            if let Some(k) = spec.kill_at_iteration() {
                cmd.arg("--kill-at-iter").arg(k.to_string());
            }
        }
        cmd.stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null());
        let mut child = match cmd.spawn() {
            Ok(c) => c,
            Err(e) => {
                return RunOutcome::Fatal {
                    detail: format!("spawn failed: {e}"),
                }
            }
        };
        let started = Instant::now();
        let mut termed_at: Option<Instant> = None;
        let status = loop {
            match child.try_wait() {
                Ok(Some(status)) => break status,
                Ok(None) => {}
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return RunOutcome::Crashed {
                        detail: format!("wait failed: {e}"),
                    };
                }
            }
            match termed_at {
                Some(t) if t.elapsed() >= self.term_grace => {
                    // Grace expired: no mercy.
                    let _ = child.kill();
                }
                Some(_) => {}
                None => {
                    if self.job_timeout.is_some_and(|t| started.elapsed() >= t) {
                        // Ask politely first — the child checkpoints on
                        // SIGTERM and exits EXIT_CHECKPOINTED.
                        if !kill_process(child.id(), SIGTERM) {
                            let _ = child.kill();
                        }
                        termed_at = Some(Instant::now());
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        match status.code() {
            Some(0) => Self::parse_result(&result_path),
            Some(EXIT_CHECKPOINTED) => {
                if ckpt_out.exists() {
                    RunOutcome::Checkpointed
                } else {
                    RunOutcome::Crashed {
                        detail: "child claimed a checkpoint it never wrote".to_string(),
                    }
                }
            }
            Some(code) => RunOutcome::Fatal {
                detail: format!("child exited with code {code}"),
            },
            None => {
                let sig = unix_signal(&status);
                let _ = kill_process(child.id(), SIGKILL); // belt and braces
                RunOutcome::Crashed {
                    detail: match sig {
                        Some(s) => format!("child killed by signal {s}"),
                        None => "child terminated without an exit code".to_string(),
                    },
                }
            }
        }
    }
}

#[cfg(unix)]
fn unix_signal(status: &std::process::ExitStatus) -> Option<i32> {
    use std::os::unix::process::ExitStatusExt as _;
    status.signal()
}

#[cfg(not(unix))]
fn unix_signal(_status: &std::process::ExitStatus) -> Option<i32> {
    None
}
