//! # bfvr-serve — crash-safe reachability as a service
//!
//! The robustness layer of the `bfvr` project: long-running fixed-point
//! reachability jobs (the paper's §2.3–§2.7 traversals) that survive
//! being killed, at three nested levels:
//!
//! * [`ckpt`] — the **durable checkpoint format**: a versioned,
//!   checksummed binary container serializing a
//!   [`bfvr_reach::Checkpoint`]'s representation state (reduced BDD DAGs
//!   via [`bfvr_bdd::BddManager::export_dag`], zonotope generator
//!   matrices) with temp-file + atomic-rename writes; the loader
//!   re-interns into a fresh manager and rejects corrupt, truncated or
//!   version-mismatched files with structured errors, never a panic.
//! * [`journal`] — the **crash-safe job store**: an append-only JSONL
//!   journal of job state transitions (submitted → running →
//!   checkpointed → done/failed/quarantined/shed) in the `bfvr-obs`
//!   canonical JSON encoding, replayed idempotently on startup.
//! * [`supervisor`] — the **supervised worker pool**: jobs run in
//!   spawned `bfvr` child processes under per-job wall-clock timeouts
//!   (SIGTERM → checkpoint → grace → SIGKILL), with exponential-backoff
//!   retry, poison-job quarantine after repeated crashes, and
//!   lowest-priority-first load shedding when the pool keeps dying.
//!
//! [`signal`] holds the workspace's only `unsafe`: two hand-declared
//! POSIX calls (`signal`, `kill`) behind safe wrappers, because the
//! workspace builds offline with no external crates.
//!
//! The engine-level mechanisms this builds on live elsewhere: in-memory
//! checkpoints and `resume` in `bfvr-reach` (PR 2), generic
//! representation checkpointing in `bfvr-setrepr` (PR 6), and the
//! cooperative cancel token in `bfvr-bdd`.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod ckpt;
pub mod job;
pub mod journal;
pub mod signal;
pub mod supervisor;

pub use ckpt::{
    decode_checkpoint, decode_meta, encode_checkpoint, fnv1a64, level_map_of, read_checkpoint,
    read_meta, write_checkpoint, CkptError, CkptMeta,
};
pub use job::JobSpec;
pub use journal::{replay, JobLedger, JobPhase, JobState, Journal, JournalError};
pub use supervisor::{
    JobRunner, ProcessRunner, RunOutcome, Supervisor, SupervisorConfig, EXIT_CHECKPOINTED,
};
