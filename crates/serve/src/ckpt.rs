//! The durable checkpoint file format: a versioned, checksummed binary
//! container for a [`Checkpoint`]'s representation state, written
//! atomically and re-internable into a fresh manager.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! magic    8 B   "BFVRCKPT"
//! version  u32   currently 2
//! engine   str   length-prefixed UTF-8 (EngineKind label, e.g. "BFV")
//! repr     str   ReprKind label, e.g. "bfv"
//! order    str   CLI order token ("s1"/"s2"/"d"/"o:SEED")
//! circuit  str   circuit spec ("gen:..." or a file path)
//! fprint   u64   FNV-1a 64 of the circuit's canonical bench text
//! numvars  u32   manager width the checkpoint was taken in
//! l2v      u32 × (count: u32)   (v2) level → variable map at capture
//!                time; count 0 = identity (no dynamic reorder ran)
//! iters    u64   image iterations completed
//! tag      u8    0 = Chi, 1 = Vector, 2 = Cdec, 3 = Zonotope
//! body           tag 0–2: root counts + a BddDag (see below)
//!                tag 3:   two zonotope blocks (reached, from)
//! checksum u64   FNV-1a 64 of every preceding byte
//! ```
//!
//! BDD-resident variants (tags 0–2) store `reached_count`/`from_count`
//! (u32 each) followed by the shared [`BddDag`] of all roots — node
//! count, `(var, lo, hi)` triples in child-before-parent order, then the
//! root references, reached roots first. A zonotope block is `n` (u64),
//! the center row (`n.div_ceil(64)` u64 words), a generator count (u32)
//! and the generator rows.
//!
//! ## Robustness contract
//!
//! * [`write_checkpoint`] goes through a same-directory temp file,
//!   fsync, and atomic rename: a crash mid-write leaves the previous
//!   checkpoint (or nothing) — never a torn file at the final path.
//! * [`read_checkpoint`] rejects, with a structured [`CkptError`] and
//!   **never a panic**: short files ([`CkptError::Truncated`]), foreign
//!   files ([`CkptError::BadMagic`]), future versions
//!   ([`CkptError::Version`]), bit rot ([`CkptError::Corrupt`] — the
//!   trailing checksum is verified before any field is trusted), and
//!   well-checksummed but structurally invalid content
//!   ([`CkptError::Malformed`] / [`CkptError::Dag`]).

use std::fs;
use std::io::Write as _;
use std::path::Path;

use bfvr_bdd::{BddDag, BddManager, DagError, DagNode};
use bfvr_reach::{Checkpoint, EngineKind};
use bfvr_setrepr::{ReprCheckpoint, ReprKind, Zonotope};

/// File magic: the first eight bytes of every checkpoint.
pub const MAGIC: &[u8; 8] = b"BFVRCKPT";
/// Current format version. Version 2 added the level → variable map
/// (dynamic reordering); version-1 files are still read, with an
/// identity map assumed.
pub const VERSION: u32 = 2;

/// FNV-1a 64-bit hash — the format's checksum and the circuit
/// fingerprint function. Hand-rolled (the workspace builds offline with
/// no external crates); not cryptographic, which is fine: the threat
/// model is bit rot and truncation, not an adversary.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The level → variable map to record in a [`CkptMeta`]: the manager's
/// current order when it has been permuted by dynamic reordering, empty
/// (= identity) otherwise — so checkpoints from unsifted runs stay
/// byte-compatible with what version 1 carried semantically.
#[must_use]
pub fn level_map_of(m: &BddManager) -> Vec<u32> {
    if m.order_is_permuted() {
        m.current_order().iter().map(|v| v.0).collect()
    } else {
        Vec::new()
    }
}

/// The engine half of a durable checkpoint plus everything `resume`
/// needs to rebuild the run's context: which circuit (by spec string),
/// which variable order, and a fingerprint to prove the rebuilt circuit
/// is the one the checkpoint was taken against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CkptMeta {
    /// Engine that produced the checkpoint.
    pub engine: EngineKind,
    /// Representation lane of the checkpoint.
    pub repr: ReprKind,
    /// CLI order token (`s1`/`s2`/`d`/`o:SEED`) the manager was built with.
    pub order: String,
    /// Circuit spec: a `gen:` generator spec or a netlist file path.
    pub circuit: String,
    /// FNV-1a 64 fingerprint of the circuit's canonical bench text —
    /// resume recomputes it from the rebuilt circuit and refuses a
    /// mismatch (a renamed or edited netlist file).
    pub fingerprint: u64,
    /// Variable count of the manager the checkpoint was taken in.
    pub num_vars: u32,
    /// The manager's level → variable map when the checkpoint was taken
    /// (`level2var[level] == var`). Empty means identity — the order was
    /// never permuted (and every version-1 file decodes this way). The
    /// DAG in the body labels nodes with *levels*, so resume applies
    /// this permutation ([`BddManager::reorder_to`]) before importing.
    pub level2var: Vec<u32>,
    /// Image iterations completed before the checkpoint.
    pub iterations: usize,
}

/// Why a checkpoint file was rejected (or failed to be written).
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem failure reading or writing.
    Io(std::io::Error),
    /// File shorter than its own structure claims (interrupted write to
    /// a non-atomic location, or truncation corruption).
    Truncated,
    /// Not a checkpoint file at all.
    BadMagic,
    /// A version this build does not understand.
    Version {
        /// The version the file claims.
        found: u32,
    },
    /// Trailing checksum mismatch: the bytes rotted in place.
    Corrupt,
    /// Checksum-valid but structurally invalid content (crafted or
    /// cross-build file).
    Malformed(&'static str),
    /// The BDD DAG inside the body was rejected on import.
    Dag(DagError),
    /// The checkpoint does not belong to the context it was loaded for
    /// (circuit fingerprint or manager width differs).
    Mismatch(String),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint i/o: {e}"),
            CkptError::Truncated => write!(f, "checkpoint file is truncated"),
            CkptError::BadMagic => write!(f, "not a bfvr checkpoint file (bad magic)"),
            CkptError::Version { found } => {
                write!(
                    f,
                    "unsupported checkpoint version {found} (expected {VERSION})"
                )
            }
            CkptError::Corrupt => write!(f, "checkpoint checksum mismatch (file is corrupt)"),
            CkptError::Malformed(why) => write!(f, "malformed checkpoint: {why}"),
            CkptError::Dag(e) => write!(f, "checkpoint graph rejected: {e}"),
            CkptError::Mismatch(why) => write!(f, "checkpoint mismatch: {why}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

impl From<DagError> for CkptError {
    fn from(e: DagError) -> Self {
        CkptError::Dag(e)
    }
}

// ---------------------------------------------------------------- encode

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    #[allow(clippy::cast_possible_truncation)]
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_dag(out: &mut Vec<u8>, dag: &BddDag) {
    #[allow(clippy::cast_possible_truncation)]
    put_u32(out, dag.nodes.len() as u32);
    for n in &dag.nodes {
        put_u32(out, n.var);
        put_u32(out, n.lo);
        put_u32(out, n.hi);
    }
    #[allow(clippy::cast_possible_truncation)]
    put_u32(out, dag.roots.len() as u32);
    for &r in &dag.roots {
        put_u32(out, r);
    }
}

fn put_zonotope(out: &mut Vec<u8>, z: &Zonotope) {
    put_u64(out, z.dims() as u64);
    for &w in z.center_words() {
        put_u64(out, w);
    }
    #[allow(clippy::cast_possible_truncation)]
    put_u32(out, z.generator_rows().len() as u32);
    for row in z.generator_rows() {
        for &w in row {
            put_u64(out, w);
        }
    }
}

/// Serializes a checkpoint into the container format (checksum
/// included) without touching the filesystem.
#[must_use]
pub fn encode_checkpoint(m: &BddManager, meta: &CkptMeta, state: &ReprCheckpoint) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_str(&mut out, meta.engine.label());
    put_str(&mut out, meta.repr.label());
    put_str(&mut out, &meta.order);
    put_str(&mut out, &meta.circuit);
    put_u64(&mut out, meta.fingerprint);
    put_u32(&mut out, meta.num_vars);
    #[allow(clippy::cast_possible_truncation)]
    put_u32(&mut out, meta.level2var.len() as u32);
    for &v in &meta.level2var {
        put_u32(&mut out, v);
    }
    put_u64(&mut out, meta.iterations as u64);
    match state {
        ReprCheckpoint::Chi { reached, from } => {
            out.push(0);
            put_u32(&mut out, 1);
            put_u32(&mut out, 1);
            put_dag(&mut out, &m.export_dag(&[reached.bdd(), from.bdd()]));
        }
        ReprCheckpoint::Vector { reached, from } => {
            out.push(1);
            encode_func_lists(&mut out, m, reached, from);
        }
        ReprCheckpoint::Cdec { constraints, from } => {
            out.push(2);
            encode_func_lists(&mut out, m, constraints, from);
        }
        ReprCheckpoint::Zonotope { reached, from } => {
            out.push(3);
            put_zonotope(&mut out, reached);
            put_zonotope(&mut out, from);
        }
    }
    let sum = fnv1a64(&out);
    put_u64(&mut out, sum);
    out
}

fn encode_func_lists(
    out: &mut Vec<u8>,
    m: &BddManager,
    reached: &[bfvr_bdd::Func],
    from: &[bfvr_bdd::Func],
) {
    #[allow(clippy::cast_possible_truncation)]
    put_u32(out, reached.len() as u32);
    #[allow(clippy::cast_possible_truncation)]
    put_u32(out, from.len() as u32);
    let roots: Vec<bfvr_bdd::Bdd> = reached.iter().chain(from.iter()).map(|f| f.bdd()).collect();
    put_dag(out, &m.export_dag(&roots));
}

/// Writes a checkpoint durably: encode, write to a same-directory temp
/// file, fsync, atomically rename over `path`, then best-effort fsync
/// the directory. A crash at any point leaves either the old file or
/// the new one — never a torn mixture.
///
/// # Errors
///
/// [`CkptError::Io`] on any filesystem failure.
pub fn write_checkpoint(
    path: &Path,
    m: &BddManager,
    meta: &CkptMeta,
    state: &ReprCheckpoint,
) -> Result<(), CkptError> {
    let bytes = encode_checkpoint(m, meta, state);
    let tmp = path.with_extension("ckpt.tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    if let Err(e) = fs::rename(&tmp, path) {
        // Leave no droppings behind a failed rename.
        let _ = fs::remove_file(&tmp);
        return Err(CkptError::Io(e));
    }
    if let Some(dir) = path.parent() {
        // Directory fsync makes the rename itself durable; best-effort
        // because not every filesystem supports opening directories.
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------- decode

/// Bounds-checked cursor over the checksummed payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        let end = self.pos.checked_add(n).ok_or(CkptError::Truncated)?;
        if end > self.buf.len() {
            return Err(CkptError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CkptError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CkptError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self) -> Result<String, CkptError> {
        let len = self.u32()? as usize;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| CkptError::Malformed("non-UTF-8 string field"))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

fn parse_meta(c: &mut Cursor<'_>, version: u32) -> Result<CkptMeta, CkptError> {
    let engine_label = c.str()?;
    let repr_label = c.str()?;
    let order = c.str()?;
    let circuit = c.str()?;
    let fingerprint = c.u64()?;
    let num_vars = c.u32()?;
    // Version 1 predates dynamic reordering: identity map.
    let level2var = if version >= 2 {
        let count = c.u32()? as usize;
        if count > c.remaining() / 4 {
            return Err(CkptError::Truncated);
        }
        if count != 0 && count != num_vars as usize {
            return Err(CkptError::Malformed(
                "level map length disagrees with variable count",
            ));
        }
        let mut map = Vec::with_capacity(count);
        for _ in 0..count {
            map.push(c.u32()?);
        }
        map
    } else {
        Vec::new()
    };
    let iterations = c.u64()?;
    let engine =
        EngineKind::parse(&engine_label).ok_or(CkptError::Malformed("unknown engine label"))?;
    let repr =
        ReprKind::parse(&repr_label).ok_or(CkptError::Malformed("unknown representation label"))?;
    if !engine.supported_reprs().contains(&repr) {
        return Err(CkptError::Malformed(
            "engine does not drive this representation",
        ));
    }
    let iterations = usize::try_from(iterations)
        .map_err(|_| CkptError::Malformed("iteration count overflow"))?;
    Ok(CkptMeta {
        engine,
        repr,
        order,
        circuit,
        fingerprint,
        num_vars,
        level2var,
        iterations,
    })
}

fn parse_dag(c: &mut Cursor<'_>, num_vars: u32) -> Result<BddDag, CkptError> {
    let node_count = c.u32()? as usize;
    // Each node is 12 bytes; refuse counts the remaining bytes cannot
    // hold before allocating (a crafted file must not OOM the loader).
    if node_count > c.remaining() / 12 {
        return Err(CkptError::Truncated);
    }
    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        let var = c.u32()?;
        let lo = c.u32()?;
        let hi = c.u32()?;
        nodes.push(DagNode { var, lo, hi });
    }
    let root_count = c.u32()? as usize;
    if root_count > c.remaining() / 4 {
        return Err(CkptError::Truncated);
    }
    let mut roots = Vec::with_capacity(root_count);
    for _ in 0..root_count {
        roots.push(c.u32()?);
    }
    Ok(BddDag {
        num_vars,
        nodes,
        roots,
    })
}

fn parse_zonotope(c: &mut Cursor<'_>) -> Result<Zonotope, CkptError> {
    let n =
        usize::try_from(c.u64()?).map_err(|_| CkptError::Malformed("zonotope width overflow"))?;
    let words = n.div_ceil(64);
    if words > c.remaining() / 8 {
        return Err(CkptError::Truncated);
    }
    let mut center = Vec::with_capacity(words);
    for _ in 0..words {
        center.push(c.u64()?);
    }
    let gen_count = c.u32()? as usize;
    if gen_count.saturating_mul(words) > c.remaining() / 8 {
        return Err(CkptError::Truncated);
    }
    let mut gens = Vec::with_capacity(gen_count);
    for _ in 0..gen_count {
        let mut row = Vec::with_capacity(words);
        for _ in 0..words {
            row.push(c.u64()?);
        }
        gens.push(row);
    }
    Zonotope::from_rows(n, center, gens)
        .ok_or(CkptError::Malformed("zonotope rows fail validation"))
}

/// Verifies container integrity (length, magic, version, checksum) and
/// returns the version plus the checksummed payload after the version
/// field. Versions 1 (no level map) and 2 are understood.
fn verify_container(bytes: &[u8]) -> Result<(u32, &[u8]), CkptError> {
    // Smallest conceivable file: magic + version + empty meta + tag +
    // checksum. Anything shorter can't even hold the frame.
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err(CkptError::Truncated);
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(CkptError::BadMagic);
    }
    let body = &bytes[..bytes.len() - 8];
    let stored = u64::from_le_bytes(
        bytes[bytes.len() - 8..]
            .try_into()
            .map_err(|_| CkptError::Truncated)?,
    );
    if fnv1a64(body) != stored {
        return Err(CkptError::Corrupt);
    }
    let mut c = Cursor {
        buf: body,
        pos: MAGIC.len(),
    };
    let version = c.u32()?;
    if version == 0 || version > VERSION {
        return Err(CkptError::Version { found: version });
    }
    Ok((version, &body[c.pos..]))
}

/// Reads just the metadata header of an encoded checkpoint, verifying
/// the checksum first. Used by the supervisor to route a file without
/// paying for re-interning.
///
/// # Errors
///
/// Any container-level [`CkptError`].
pub fn decode_meta(bytes: &[u8]) -> Result<CkptMeta, CkptError> {
    let (version, payload) = verify_container(bytes)?;
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    parse_meta(&mut c, version)
}

/// Decodes an encoded checkpoint and re-interns its state into `m`,
/// returning the metadata and a [`Checkpoint`] ready for
/// [`bfvr_reach::resume`]. The manager must be the one built for the
/// checkpoint's circuit and order — `num_vars` is checked here, the
/// circuit fingerprint by the caller (who rebuilt the circuit).
///
/// # Errors
///
/// Container-level errors ([`CkptError::Truncated`] /
/// [`CkptError::BadMagic`] / [`CkptError::Version`] /
/// [`CkptError::Corrupt`]), [`CkptError::Malformed`] for structural
/// violations, [`CkptError::Dag`] when the graph is rejected on import,
/// and [`CkptError::Mismatch`] when `m` has the wrong width.
pub fn decode_checkpoint(
    bytes: &[u8],
    m: &mut BddManager,
) -> Result<(CkptMeta, Checkpoint), CkptError> {
    let (version, payload) = verify_container(bytes)?;
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let meta = parse_meta(&mut c, version)?;
    if meta.num_vars != m.num_vars() {
        return Err(CkptError::Mismatch(format!(
            "checkpoint was taken over {} variables, manager has {}",
            meta.num_vars,
            m.num_vars()
        )));
    }
    // The body's DAG labels nodes with *levels* under the order the
    // checkpoint was captured in; permute the fresh manager to that
    // order before importing, so every re-interned edge means the same
    // function it did when written.
    if !meta.level2var.is_empty() {
        m.reorder_to(&meta.level2var, &[])
            .map_err(|_| CkptError::Malformed("level map is not a valid permutation"))?;
    }
    let tag = c.u8()?;
    let state = match tag {
        0..=2 => {
            let reached_count = c.u32()? as usize;
            let from_count = c.u32()? as usize;
            if tag == 0 && (reached_count != 1 || from_count != 1) {
                return Err(CkptError::Malformed(
                    "chi checkpoint needs exactly one root per set",
                ));
            }
            let dag = parse_dag(&mut c, meta.num_vars)?;
            let total = reached_count
                .checked_add(from_count)
                .ok_or(CkptError::Malformed("root count overflow"))?;
            if dag.roots.len() != total {
                return Err(CkptError::Malformed("root count disagrees with dag"));
            }
            let edges = m.import_dag(&dag)?;
            let mut funcs: Vec<bfvr_bdd::Func> = edges.into_iter().map(|e| m.func(e)).collect();
            let from: Vec<bfvr_bdd::Func> = funcs.split_off(reached_count);
            let reached = funcs;
            match tag {
                0 => {
                    // Counts were checked above; destructure, don't index.
                    let (Some(r), Some(f)) = (reached.into_iter().next(), from.into_iter().next())
                    else {
                        return Err(CkptError::Malformed("chi checkpoint lost a root"));
                    };
                    ReprCheckpoint::Chi {
                        reached: r,
                        from: f,
                    }
                }
                1 => ReprCheckpoint::Vector { reached, from },
                _ => ReprCheckpoint::Cdec {
                    constraints: reached,
                    from,
                },
            }
        }
        3 => {
            let reached = parse_zonotope(&mut c)?;
            let from = parse_zonotope(&mut c)?;
            ReprCheckpoint::Zonotope { reached, from }
        }
        _ => return Err(CkptError::Malformed("unknown state variant tag")),
    };
    if c.remaining() != 0 {
        return Err(CkptError::Malformed("trailing bytes after state"));
    }
    let cp = Checkpoint::new(meta.engine, meta.repr, meta.iterations, state);
    Ok((meta, cp))
}

/// Reads and decodes a checkpoint file (see [`decode_checkpoint`]).
///
/// # Errors
///
/// [`CkptError::Io`] on read failure, else as [`decode_checkpoint`].
pub fn read_checkpoint(
    path: &Path,
    m: &mut BddManager,
) -> Result<(CkptMeta, Checkpoint), CkptError> {
    let bytes = fs::read(path)?;
    decode_checkpoint(&bytes, m)
}

/// Reads and decodes just a checkpoint file's header (see
/// [`decode_meta`]).
///
/// # Errors
///
/// [`CkptError::Io`] on read failure, else as [`decode_meta`].
pub fn read_meta(path: &Path) -> Result<CkptMeta, CkptError> {
    let bytes = fs::read(path)?;
    decode_meta(&bytes)
}
