//! Job specifications: what `bfvr submit` records and the worker pool
//! executes.

use bfvr_obs::json::{obj, Value};

/// One reachability job. Everything is carried as strings/numbers —
/// the spec must survive a JSON round-trip through the journal and a
/// command-line round-trip into a `bfvr` child process.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Unique job id (journal key, checkpoint/result file stem).
    pub id: String,
    /// Circuit spec: a `gen:` generator spec or a netlist file path.
    pub circuit: String,
    /// Engine label (`BFV`/`CBM`/`MONO`/`IWLS95`/`CDEC`).
    pub engine: String,
    /// Representation label (`bfv`/`chi`/`cdec`/`zdd`/`zono`).
    pub repr: String,
    /// Order token (`s1`/`s2`/`d`/`o:SEED`).
    pub order: String,
    /// Scheduling priority, higher first. Sheds lowest-first when the
    /// pool degrades.
    pub priority: u8,
    /// Node-limit forwarded to the child, if any.
    pub node_limit: Option<u64>,
    /// Time-limit (seconds) forwarded to the child, if any.
    pub time_limit_secs: Option<u64>,
    /// Durable-checkpoint period forwarded to the child (iterations).
    pub checkpoint_every: u64,
    /// Fault injection for the harness: `kill@K` SIGKILLs the child at
    /// iteration K — applied on the **first** attempt only, so the
    /// supervisor's resume path is what the test exercises.
    pub fault: Option<String>,
}

impl JobSpec {
    /// A default-shaped spec for `circuit` under `id`.
    #[must_use]
    pub fn new(id: &str, circuit: &str) -> JobSpec {
        JobSpec {
            id: id.to_string(),
            circuit: circuit.to_string(),
            engine: "BFV".to_string(),
            repr: "bfv".to_string(),
            order: "s1".to_string(),
            priority: 0,
            node_limit: None,
            time_limit_secs: None,
            checkpoint_every: 1,
            fault: None,
        }
    }

    /// Serializes for the journal's `submitted` record.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("id", Value::Str(self.id.clone())),
            ("circuit", Value::Str(self.circuit.clone())),
            ("engine", Value::Str(self.engine.clone())),
            ("repr", Value::Str(self.repr.clone())),
            ("order", Value::Str(self.order.clone())),
            ("priority", Value::Num(f64::from(self.priority))),
            ("checkpoint_every", Value::Num(self.checkpoint_every as f64)),
        ];
        if let Some(n) = self.node_limit {
            pairs.push(("node_limit", Value::Num(n as f64)));
        }
        if let Some(t) = self.time_limit_secs {
            pairs.push(("time_limit_secs", Value::Num(t as f64)));
        }
        if let Some(f) = &self.fault {
            pairs.push(("fault", Value::Str(f.clone())));
        }
        obj(pairs)
    }

    /// Deserializes a journaled spec; `None` when a mandatory field is
    /// missing or mistyped (the journal line is then malformed).
    #[must_use]
    pub fn from_json(v: &Value) -> Option<JobSpec> {
        let s = |k: &str| v.get(k).and_then(Value::as_str).map(String::from);
        Some(JobSpec {
            id: s("id")?,
            circuit: s("circuit")?,
            engine: s("engine")?,
            repr: s("repr")?,
            order: s("order")?,
            #[allow(clippy::cast_possible_truncation)]
            priority: v
                .get("priority")
                .and_then(Value::as_u64)
                .unwrap_or(0)
                .min(255) as u8,
            node_limit: v.get("node_limit").and_then(Value::as_u64),
            time_limit_secs: v.get("time_limit_secs").and_then(Value::as_u64),
            checkpoint_every: v
                .get("checkpoint_every")
                .and_then(Value::as_u64)
                .unwrap_or(1),
            fault: s("fault"),
        })
    }

    /// Parses a `kill@K` fault spec into K.
    #[must_use]
    pub fn kill_at_iteration(&self) -> Option<u64> {
        self.fault
            .as_deref()
            .and_then(|f| f.strip_prefix("kill@"))
            .and_then(|k| k.parse().ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let mut spec = JobSpec::new("j1", "gen:queue:4");
        spec.engine = "MONO".into();
        spec.repr = "zdd".into();
        spec.priority = 7;
        spec.node_limit = Some(100_000);
        spec.fault = Some("kill@2".into());
        let back = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.kill_at_iteration(), Some(2));
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        assert!(JobSpec::from_json(&obj(vec![("id", Value::Str("x".into()))])).is_none());
    }
}
