//! Property tests: the BFV set algebra against the characteristic-function
//! oracle, on random sets and random parameterized vectors.

use bfvr_bdd::{Bdd, BddManager, Var};
use bfvr_bfv::convert::{from_characteristic, to_characteristic};
use bfvr_bfv::reparam::{reparameterize_with, Schedule};
use bfvr_bfv::{ops, Bfv, Space, StateSet};
use proptest::prelude::*;

const N: usize = 4; // state bits

/// Builds the characteristic function of a set given as a 16-bit mask over
/// {0,1}^4 (bit k of the mask = membership of the point with value k,
/// reading component 0 as the MSB).
fn chi_of_mask(m: &mut BddManager, space: &Space, mask: u16) -> Bdd {
    let mut chi = Bdd::FALSE;
    for pt in 0..16u16 {
        if mask & (1 << pt) != 0 {
            let mut cube = Bdd::TRUE;
            #[allow(clippy::needless_range_loop)]
            for i in 0..N {
                let bit = (pt >> (N - 1 - i)) & 1 == 1;
                let v = space.var(i);
                let lit = if bit { m.var(v) } else { m.nvar(v).unwrap() };
                cube = m.and(cube, lit).unwrap();
            }
            chi = m.or(chi, cube).unwrap();
        }
    }
    chi
}

fn set_of_mask(m: &mut BddManager, space: &Space, mask: u16) -> Option<Bfv> {
    let chi = chi_of_mask(m, space, mask);
    from_characteristic(m, space, chi).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn union_matches_oracle(a in 1u16.., b in 1u16..) {
        let mut m = BddManager::new(N as u32);
        let space = Space::contiguous(N as u32);
        let fa = set_of_mask(&mut m, &space, a).unwrap();
        let fb = set_of_mask(&mut m, &space, b).unwrap();
        let h = ops::union(&mut m, &space, &fa, &fb).unwrap();
        prop_assert!(h.is_canonical(&mut m, &space).unwrap());
        let got = to_characteristic(&mut m, &space, &h).unwrap();
        let expect = chi_of_mask(&mut m, &space, a | b);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn intersect_matches_oracle(a in 1u16.., b in 1u16..) {
        let mut m = BddManager::new(N as u32);
        let space = Space::contiguous(N as u32);
        let fa = set_of_mask(&mut m, &space, a).unwrap();
        let fb = set_of_mask(&mut m, &space, b).unwrap();
        let h = ops::intersect(&mut m, &space, &fa, &fb).unwrap();
        if a & b == 0 {
            prop_assert!(h.is_none());
        } else {
            let h = h.unwrap();
            prop_assert!(h.is_canonical(&mut m, &space).unwrap());
            let got = to_characteristic(&mut m, &space, &h).unwrap();
            let expect = chi_of_mask(&mut m, &space, a & b);
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn conversion_roundtrip_is_identity(a in 1u16..) {
        let mut m = BddManager::new(N as u32);
        let space = Space::contiguous(N as u32);
        let f = set_of_mask(&mut m, &space, a).unwrap();
        prop_assert!(f.is_canonical(&mut m, &space).unwrap());
        let chi = to_characteristic(&mut m, &space, &f).unwrap();
        let g = from_characteristic(&mut m, &space, chi).unwrap().unwrap();
        prop_assert_eq!(f.components(), g.components());
    }

    #[test]
    fn union_associative_via_canonicity(a in 1u16.., b in 1u16.., c in 1u16..) {
        let mut m = BddManager::new(N as u32);
        let space = Space::contiguous(N as u32);
        let fa = set_of_mask(&mut m, &space, a).unwrap();
        let fb = set_of_mask(&mut m, &space, b).unwrap();
        let fc = set_of_mask(&mut m, &space, c).unwrap();
        let ab = ops::union(&mut m, &space, &fa, &fb).unwrap();
        let ab_c = ops::union(&mut m, &space, &ab, &fc).unwrap();
        let bc = ops::union(&mut m, &space, &fb, &fc).unwrap();
        let a_bc = ops::union(&mut m, &space, &fa, &bc).unwrap();
        prop_assert_eq!(ab_c.components(), a_bc.components());
    }

    #[test]
    fn quantification_matches_oracle(a in 1u16.., comp in 0usize..N) {
        let mut m = BddManager::new(N as u32);
        let space = Space::contiguous(N as u32);
        let f = set_of_mask(&mut m, &space, a).unwrap();
        let v = space.var(comp);
        // Oracle via characteristic functions.
        let chi = to_characteristic(&mut m, &space, &f).unwrap();
        let chi0 = m.cofactor(chi, v, false).unwrap();
        let chi1 = m.cofactor(chi, v, true).unwrap();
        let e = ops::exists(&mut m, &space, &f, v).unwrap();
        prop_assert!(e.is_canonical(&mut m, &space).unwrap());
        let got = to_characteristic(&mut m, &space, &e).unwrap();
        let expect = m.or(chi0, chi1).unwrap();
        // ∃v F as a set = (F|v=0) ∪ (F|v=1): the oracle is the union of
        // the two cofactor sets. F|v=c as a set has χ… the componentwise
        // cofactor selects a subset; its χ is from the vector directly.
        let f0 = ops::cofactor(&mut m, &space, &f, v, false).unwrap();
        let f1 = ops::cofactor(&mut m, &space, &f, v, true).unwrap();
        let c0 = to_characteristic(&mut m, &space, &f0).unwrap();
        let c1 = to_characteristic(&mut m, &space, &f1).unwrap();
        let set_expect = m.or(c0, c1).unwrap();
        prop_assert_eq!(got, set_expect);
        // The smoothing view must contain the set view.
        let gap = m.diff(got, expect).unwrap();
        prop_assert!(gap.is_false());
    }

    #[test]
    fn forall_matches_cofactor_intersection(a in 1u16.., comp in 0usize..N) {
        let mut m = BddManager::new(N as u32);
        let space = Space::contiguous(N as u32);
        let f = set_of_mask(&mut m, &space, a).unwrap();
        let v = space.var(comp);
        let fa = ops::forall(&mut m, &space, &f, v).unwrap();
        let f0 = ops::cofactor(&mut m, &space, &f, v, false).unwrap();
        let f1 = ops::cofactor(&mut m, &space, &f, v, true).unwrap();
        let c0 = to_characteristic(&mut m, &space, &f0).unwrap();
        let c1 = to_characteristic(&mut m, &space, &f1).unwrap();
        let expect = m.and(c0, c1).unwrap();
        match fa {
            None => prop_assert!(expect.is_false()),
            Some(h) => {
                prop_assert!(h.is_canonical(&mut m, &space).unwrap());
                let got = to_characteristic(&mut m, &space, &h).unwrap();
                prop_assert_eq!(got, expect);
            }
        }
    }

    #[test]
    fn cofactor_members_are_subset(a in 1u16.., comp in 0usize..N, val: bool) {
        let mut m = BddManager::new(N as u32);
        let space = Space::contiguous(N as u32);
        let f = set_of_mask(&mut m, &space, a).unwrap();
        let g = ops::cofactor(&mut m, &space, &f, space.var(comp), val).unwrap();
        prop_assert!(g.is_canonical(&mut m, &space).unwrap());
        let sg = StateSet::NonEmpty(g);
        let sf = StateSet::NonEmpty(f);
        for mem in sg.members(&mut m, &space).unwrap() {
            prop_assert!(sf.contains(&m, &space, &mem).unwrap());
        }
    }

    #[test]
    fn reparam_matches_relational_image(
        tt0 in any::<u16>(),
        tt1 in any::<u16>(),
        tt2 in any::<u16>(),
        tt3 in any::<u16>(),
        dynamic: bool,
    ) {
        // Four random next-state functions of 4 parameters, given as
        // 16-entry truth tables. Oracle: χ_img(x) = ∃p. ⋀ x_i ↔ n_i(p).
        let mut m = BddManager::new(8);
        let space = Space::contiguous(4);
        let params: Vec<Var> = (4..8).map(Var).collect();
        let tts = [tt0, tt1, tt2, tt3];
        let mut comps = Vec::new();
        for tt in tts {
            // Build the function from its truth table over params.
            let mut f = Bdd::FALSE;
            for row in 0..16u16 {
                if tt & (1 << row) != 0 {
                    let mut cube = Bdd::TRUE;
                    for (j, &p) in params.iter().enumerate() {
                        let bit = (row >> (3 - j)) & 1 == 1;
                        let lit = if bit { m.var(p) } else { m.nvar(p).unwrap() };
                        cube = m.and(cube, lit).unwrap();
                    }
                    f = m.or(f, cube).unwrap();
                }
            }
            comps.push(f);
        }
        let n = Bfv::from_components(&space, comps.clone()).unwrap();
        let sched = if dynamic { Schedule::DynamicSupport } else { Schedule::Fixed };
        let r = reparameterize_with(&mut m, &space, &n, &params, sched).unwrap();
        prop_assert!(r.is_canonical(&mut m, &space).unwrap());
        let got = to_characteristic(&mut m, &space, &r).unwrap();
        // Oracle.
        let mut rel = Bdd::TRUE;
        #[allow(clippy::needless_range_loop)]
        for i in 0..4 {
            let xi = m.var(space.var(i));
            let eq = m.xnor(xi, comps[i]).unwrap();
            rel = m.and(rel, eq).unwrap();
        }
        let pcube = m.cube_from_vars(&params).unwrap();
        let expect = m.exists(rel, pcube).unwrap();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn permuted_component_order_still_canonical(a in 1u16.., seed in any::<u64>()) {
        // The set algebra is correct for any component order over the
        // same variables (the future-work reordering experiments rely on
        // this).
        let mut m = BddManager::new(N as u32);
        let mut perm: Vec<usize> = (0..N).collect();
        let mut s = seed;
        for i in (1..N).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            perm.swap(i, (s >> 33) as usize % (i + 1));
        }
        let space = Space::contiguous(N as u32).permuted(&perm);
        let chi = chi_of_mask(&mut m, &Space::contiguous(N as u32), a);
        // chi is over vars 0..4 which are exactly the permuted space's
        // vars, just weighted differently.
        let f = from_characteristic(&mut m, &space, chi).unwrap().unwrap();
        prop_assert!(f.is_canonical(&mut m, &space).unwrap());
        let back = to_characteristic(&mut m, &space, &f).unwrap();
        prop_assert_eq!(back, chi);
        // Union in the permuted space matches the oracle too.
        let g = ops::union(&mut m, &space, &f, &f).unwrap();
        prop_assert_eq!(g.components(), f.components());
    }
}
