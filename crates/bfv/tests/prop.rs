//! Property tests: the BFV set algebra against the characteristic-function
//! oracle, on random sets and random parameterized vectors.
//!
//! Deterministic xorshift generation keeps the suite dependency-free; a
//! failing case is reproducible from the printed case number.

use bfvr_bdd::{Bdd, BddManager, Var};
use bfvr_bfv::convert::{from_characteristic, to_characteristic};
use bfvr_bfv::reparam::{reparameterize_with, Schedule};
use bfvr_bfv::{ops, Bfv, Space, StateSet};

const N: usize = 4; // state bits
const CASES: u64 = 200;

/// xorshift64* — deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Non-empty 16-point set mask.
    fn mask(&mut self) -> u16 {
        let m = self.next() as u16;
        if m == 0 {
            1
        } else {
            m
        }
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn flip(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

fn for_cases(seed: u64, mut check: impl FnMut(u64, &mut Rng)) {
    let mut rng = Rng::new(seed);
    for case in 0..CASES {
        check(case, &mut rng);
    }
}

/// Builds the characteristic function of a set given as a 16-bit mask over
/// {0,1}^4 (bit k of the mask = membership of the point with value k,
/// reading component 0 as the MSB).
fn chi_of_mask(m: &mut BddManager, space: &Space, mask: u16) -> Bdd {
    let mut chi = Bdd::FALSE;
    for pt in 0..16u16 {
        if mask & (1 << pt) != 0 {
            let mut cube = Bdd::TRUE;
            #[allow(clippy::needless_range_loop)]
            for i in 0..N {
                let bit = (pt >> (N - 1 - i)) & 1 == 1;
                let v = space.var(i);
                let lit = if bit { m.var(v) } else { m.nvar(v) };
                cube = m.and(cube, lit).unwrap();
            }
            chi = m.or(chi, cube).unwrap();
        }
    }
    chi
}

fn set_of_mask(m: &mut BddManager, space: &Space, mask: u16) -> Option<Bfv> {
    let chi = chi_of_mask(m, space, mask);
    from_characteristic(m, space, chi).unwrap()
}

#[test]
fn union_matches_oracle() {
    for_cases(0xBF01, |case, rng| {
        let (a, b) = (rng.mask(), rng.mask());
        let mut m = BddManager::new(N as u32);
        let space = Space::contiguous(N as u32);
        let fa = set_of_mask(&mut m, &space, a).unwrap();
        let fb = set_of_mask(&mut m, &space, b).unwrap();
        let h = ops::union(&mut m, &space, &fa, &fb).unwrap();
        assert!(h.is_canonical(&mut m, &space).unwrap(), "case {case}");
        let got = to_characteristic(&mut m, &space, &h).unwrap();
        let expect = chi_of_mask(&mut m, &space, a | b);
        assert_eq!(got, expect, "case {case}: {a:#06x} ∪ {b:#06x}");
    });
}

#[test]
fn intersect_matches_oracle() {
    for_cases(0xBF02, |case, rng| {
        let (a, b) = (rng.mask(), rng.mask());
        let mut m = BddManager::new(N as u32);
        let space = Space::contiguous(N as u32);
        let fa = set_of_mask(&mut m, &space, a).unwrap();
        let fb = set_of_mask(&mut m, &space, b).unwrap();
        let h = ops::intersect(&mut m, &space, &fa, &fb).unwrap();
        if a & b == 0 {
            assert!(h.is_none(), "case {case}");
        } else {
            let h = h.unwrap();
            assert!(h.is_canonical(&mut m, &space).unwrap(), "case {case}");
            let got = to_characteristic(&mut m, &space, &h).unwrap();
            let expect = chi_of_mask(&mut m, &space, a & b);
            assert_eq!(got, expect, "case {case}: {a:#06x} ∩ {b:#06x}");
        }
    });
}

#[test]
fn conversion_roundtrip_is_identity() {
    for_cases(0xBF03, |case, rng| {
        let a = rng.mask();
        let mut m = BddManager::new(N as u32);
        let space = Space::contiguous(N as u32);
        let f = set_of_mask(&mut m, &space, a).unwrap();
        assert!(f.is_canonical(&mut m, &space).unwrap(), "case {case}");
        let chi = to_characteristic(&mut m, &space, &f).unwrap();
        let g = from_characteristic(&mut m, &space, chi).unwrap().unwrap();
        assert_eq!(f.components(), g.components(), "case {case}");
    });
}

#[test]
fn union_associative_via_canonicity() {
    for_cases(0xBF04, |case, rng| {
        let (a, b, c) = (rng.mask(), rng.mask(), rng.mask());
        let mut m = BddManager::new(N as u32);
        let space = Space::contiguous(N as u32);
        let fa = set_of_mask(&mut m, &space, a).unwrap();
        let fb = set_of_mask(&mut m, &space, b).unwrap();
        let fc = set_of_mask(&mut m, &space, c).unwrap();
        let ab = ops::union(&mut m, &space, &fa, &fb).unwrap();
        let ab_c = ops::union(&mut m, &space, &ab, &fc).unwrap();
        let bc = ops::union(&mut m, &space, &fb, &fc).unwrap();
        let a_bc = ops::union(&mut m, &space, &fa, &bc).unwrap();
        assert_eq!(ab_c.components(), a_bc.components(), "case {case}");
    });
}

#[test]
fn quantification_matches_oracle() {
    for_cases(0xBF05, |case, rng| {
        let a = rng.mask();
        let comp = rng.below(N as u64) as usize;
        let mut m = BddManager::new(N as u32);
        let space = Space::contiguous(N as u32);
        let f = set_of_mask(&mut m, &space, a).unwrap();
        let v = space.var(comp);
        // Oracle via characteristic functions.
        let chi = to_characteristic(&mut m, &space, &f).unwrap();
        let chi0 = m.cofactor(chi, v, false).unwrap();
        let chi1 = m.cofactor(chi, v, true).unwrap();
        let e = ops::exists(&mut m, &space, &f, v).unwrap();
        assert!(e.is_canonical(&mut m, &space).unwrap(), "case {case}");
        let got = to_characteristic(&mut m, &space, &e).unwrap();
        let expect = m.or(chi0, chi1).unwrap();
        // ∃v F as a set = (F|v=0) ∪ (F|v=1): the oracle is the union of
        // the two cofactor sets.
        let f0 = ops::cofactor(&mut m, &space, &f, v, false).unwrap();
        let f1 = ops::cofactor(&mut m, &space, &f, v, true).unwrap();
        let c0 = to_characteristic(&mut m, &space, &f0).unwrap();
        let c1 = to_characteristic(&mut m, &space, &f1).unwrap();
        let set_expect = m.or(c0, c1).unwrap();
        assert_eq!(got, set_expect, "case {case}");
        // The smoothing view must contain the set view.
        let gap = m.diff(got, expect).unwrap();
        assert!(gap.is_false(), "case {case}");
    });
}

#[test]
fn forall_matches_cofactor_intersection() {
    for_cases(0xBF06, |case, rng| {
        let a = rng.mask();
        let comp = rng.below(N as u64) as usize;
        let mut m = BddManager::new(N as u32);
        let space = Space::contiguous(N as u32);
        let f = set_of_mask(&mut m, &space, a).unwrap();
        let v = space.var(comp);
        let fa = ops::forall(&mut m, &space, &f, v).unwrap();
        let f0 = ops::cofactor(&mut m, &space, &f, v, false).unwrap();
        let f1 = ops::cofactor(&mut m, &space, &f, v, true).unwrap();
        let c0 = to_characteristic(&mut m, &space, &f0).unwrap();
        let c1 = to_characteristic(&mut m, &space, &f1).unwrap();
        let expect = m.and(c0, c1).unwrap();
        match fa {
            None => assert!(expect.is_false(), "case {case}"),
            Some(h) => {
                assert!(h.is_canonical(&mut m, &space).unwrap(), "case {case}");
                let got = to_characteristic(&mut m, &space, &h).unwrap();
                assert_eq!(got, expect, "case {case}");
            }
        }
    });
}

#[test]
fn cofactor_members_are_subset() {
    for_cases(0xBF07, |case, rng| {
        let a = rng.mask();
        let comp = rng.below(N as u64) as usize;
        let val = rng.flip();
        let mut m = BddManager::new(N as u32);
        let space = Space::contiguous(N as u32);
        let f = set_of_mask(&mut m, &space, a).unwrap();
        let g = ops::cofactor(&mut m, &space, &f, space.var(comp), val).unwrap();
        assert!(g.is_canonical(&mut m, &space).unwrap(), "case {case}");
        let sg = StateSet::NonEmpty(g);
        let sf = StateSet::NonEmpty(f);
        for mem in sg.members(&mut m, &space).unwrap() {
            assert!(sf.contains(&m, &space, &mem).unwrap(), "case {case}");
        }
    });
}

#[test]
fn reparam_matches_relational_image() {
    for_cases(0xBF08, |case, rng| {
        // Four random next-state functions of 4 parameters, given as
        // 16-entry truth tables. Oracle: χ_img(x) = ∃p. ⋀ x_i ↔ n_i(p).
        let tts = [
            rng.next() as u16,
            rng.next() as u16,
            rng.next() as u16,
            rng.next() as u16,
        ];
        let dynamic = rng.flip();
        let mut m = BddManager::new(8);
        let space = Space::contiguous(4);
        let params: Vec<Var> = (4..8).map(Var).collect();
        let mut comps = Vec::new();
        for tt in tts {
            // Build the function from its truth table over params.
            let mut f = Bdd::FALSE;
            for row in 0..16u16 {
                if tt & (1 << row) != 0 {
                    let mut cube = Bdd::TRUE;
                    for (j, &p) in params.iter().enumerate() {
                        let bit = (row >> (3 - j)) & 1 == 1;
                        let lit = if bit { m.var(p) } else { m.nvar(p) };
                        cube = m.and(cube, lit).unwrap();
                    }
                    f = m.or(f, cube).unwrap();
                }
            }
            comps.push(f);
        }
        let n = Bfv::from_components(&space, comps.clone()).unwrap();
        let sched = if dynamic {
            Schedule::DynamicSupport
        } else {
            Schedule::Fixed
        };
        let r = reparameterize_with(&mut m, &space, &n, &params, sched).unwrap();
        assert!(r.is_canonical(&mut m, &space).unwrap(), "case {case}");
        let got = to_characteristic(&mut m, &space, &r).unwrap();
        // Oracle.
        let mut rel = Bdd::TRUE;
        #[allow(clippy::needless_range_loop)]
        for i in 0..4 {
            let xi = m.var(space.var(i));
            let eq = m.xnor(xi, comps[i]).unwrap();
            rel = m.and(rel, eq).unwrap();
        }
        let pcube = m.cube_from_vars(&params).unwrap();
        let expect = m.exists(rel, pcube).unwrap();
        assert_eq!(got, expect, "case {case}: tts {tts:?}");
    });
}

#[test]
fn permuted_component_order_still_canonical() {
    for_cases(0xBF09, |case, rng| {
        // The set algebra is correct for any component order over the
        // same variables (the future-work reordering experiments rely on
        // this).
        let a = rng.mask();
        let mut m = BddManager::new(N as u32);
        let mut perm: Vec<usize> = (0..N).collect();
        for i in (1..N).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            perm.swap(i, j);
        }
        let space = Space::contiguous(N as u32).permuted(&perm);
        let chi = chi_of_mask(&mut m, &Space::contiguous(N as u32), a);
        // chi is over vars 0..4 which are exactly the permuted space's
        // vars, just weighted differently.
        let f = from_characteristic(&mut m, &space, chi).unwrap().unwrap();
        assert!(f.is_canonical(&mut m, &space).unwrap(), "case {case}");
        let back = to_characteristic(&mut m, &space, &f).unwrap();
        assert_eq!(back, chi, "case {case}");
        // Union in the permuted space matches the oracle too.
        let g = ops::union(&mut m, &space, &f, &f).unwrap();
        assert_eq!(g.components(), f.components(), "case {case}");
    });
}
