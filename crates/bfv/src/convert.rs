//! Conversions between characteristic functions and canonical BFVs.
//!
//! `to_characteristic` exploits the conjunctive-decomposition connection of
//! paper §2.7: for a canonical vector, `χ = ⋀_i (v_i ↔ f_i)`. The reverse
//! direction implements the Coudert–Berthet–Madre parameterization: walk
//! the components in weight order, deciding forced/free from the
//! satisfiable extensions of the prefix selected so far.
//!
//! In the paper's reachability flow (Figure 2) these conversions are never
//! executed — that is the point of the contribution. They exist here for
//! the Figure 1 baseline flow, for API-boundary interoperability, and as
//! the oracle against which all direct set operations are property-tested.

use bfvr_bdd::{Bdd, BddManager};

use crate::vector::Bfv;
use crate::{Result, Space};

/// Builds the characteristic function of the set represented by a
/// *canonical* vector: `χ = ⋀_i (v_i ↔ f_i)`.
///
/// The result depends only on the space's choice variables.
///
/// # Errors
///
/// Fails on BDD resource-limit exhaustion.
pub fn to_characteristic(m: &mut BddManager, space: &Space, f: &Bfv) -> Result<Bdd> {
    let mut chi = Bdd::TRUE;
    for i in 0..space.len() {
        let v = m.var(space.var(i));
        let cons = m.xnor(v, f.component(i))?;
        chi = m.and(chi, cons)?;
    }
    Ok(chi)
}

/// Builds the canonical vector of the set `{X : χ(X) = 1}`, reading state
/// bit `i` as the space's choice variable `i`. Returns `None` for the
/// empty set, which has no functional vector.
///
/// `χ` must depend only on the space's choice variables.
///
/// # Errors
///
/// Fails on BDD resource-limit exhaustion.
pub fn from_characteristic(m: &mut BddManager, space: &Space, chi: Bdd) -> Result<Option<Bfv>> {
    if chi.is_false() {
        return Ok(None);
    }
    debug_assert!(
        m.support(chi)
            .vars()
            .iter()
            .all(|v| space.vars().contains(v)),
        "characteristic function depends on variables outside the space"
    );
    let n = space.len();
    // Suffix cubes: suffix[i] = positive cube of choice vars of components
    // ≥ i (cube_from_vars sorts, so any component/variable order works).
    let mut suffix = vec![Bdd::TRUE; n + 1];
    #[allow(clippy::needless_range_loop)] // suffix[i] built from vars i..n
    for i in 0..=n {
        let vars: Vec<_> = (i..n).map(|j| space.var(j)).collect();
        suffix[i] = m.cube_from_vars(&vars)?;
    }
    let mut r = chi;
    let mut comps = Vec::with_capacity(n);
    for i in 0..n {
        let v = space.var(i);
        let a = m.cofactor(r, v, true)?;
        let b = m.cofactor(r, v, false)?;
        let e1 = m.exists(a, suffix[i + 1])?;
        let e0 = m.exists(b, suffix[i + 1])?;
        // Forced to 1 where no 0-extension exists, forced to 0 where no
        // 1-extension exists, free choice otherwise. (Both absent cannot
        // happen: the prefix was selected to stay satisfiable.)
        let vv = m.var(v);
        let inner = m.ite(e1, vv, Bdd::FALSE)?;
        let f_i = m.ite(e0, inner, Bdd::TRUE)?;
        comps.push(f_i);
        r = m.ite(f_i, a, b)?;
    }
    Ok(Some(Bfv::from_components(space, comps)?))
}

/// The complement of a canonical set, via the characteristic-function
/// detour.
///
/// The paper notes it has *no direct negation algorithm* for BFVs; this
/// helper rounds out the set algebra for downstream users while making the
/// cost (two conversions) explicit in its implementation. Returns `None`
/// when the complement is empty (i.e. `f` is the universe).
///
/// # Errors
///
/// Fails on BDD resource-limit exhaustion.
pub fn complement_via_characteristic(
    m: &mut BddManager,
    space: &Space,
    f: &Bfv,
) -> Result<Option<Bfv>> {
    let chi = to_characteristic(m, space, f)?;
    // χ depends only on the space's variables, so ¬χ does too.
    let nchi = m.not(chi);
    from_characteristic(m, space, nchi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfvr_bdd::Var;

    fn table1_set(m: &mut BddManager) -> (Space, Bdd) {
        // χ = ¬(v1 ∧ v2): the paper's Table 1 example.
        let space = Space::contiguous(3);
        let v1 = m.var(Var(0));
        let v2 = m.var(Var(1));
        let v12 = m.and(v1, v2).unwrap();
        let chi = m.not(v12);
        (space, chi)
    }

    #[test]
    fn from_characteristic_reproduces_table1_vector() {
        let mut m = BddManager::new(3);
        let (space, chi) = table1_set(&mut m);
        let f = from_characteristic(&mut m, &space, chi).unwrap().unwrap();
        // Expected canonical vector: (v1, ¬v1 ∧ v2, v3).
        let v1 = m.var(Var(0));
        let v2 = m.var(Var(1));
        let v3 = m.var(Var(2));
        let nv1 = m.not(v1);
        let f2 = m.and(nv1, v2).unwrap();
        assert_eq!(f.components(), &[v1, f2, v3]);
        assert!(f.is_canonical(&mut m, &space).unwrap());
    }

    #[test]
    fn roundtrip_chi_to_bfv_to_chi() {
        let mut m = BddManager::new(3);
        let (space, chi) = table1_set(&mut m);
        let f = from_characteristic(&mut m, &space, chi).unwrap().unwrap();
        let back = to_characteristic(&mut m, &space, &f).unwrap();
        assert_eq!(back, chi);
    }

    #[test]
    fn empty_set_has_no_vector() {
        let mut m = BddManager::new(2);
        let space = Space::contiguous(2);
        assert!(from_characteristic(&mut m, &space, Bdd::FALSE)
            .unwrap()
            .is_none());
    }

    #[test]
    fn universe_and_singleton() {
        let mut m = BddManager::new(2);
        let space = Space::contiguous(2);
        let u = from_characteristic(&mut m, &space, Bdd::TRUE)
            .unwrap()
            .unwrap();
        assert_eq!(u.components(), &[m.var(Var(0)), m.var(Var(1))]);
        // Singleton {10}: χ = v1 ∧ ¬v2.
        let v1 = m.var(Var(0));
        let nv2 = m.nvar(Var(1));
        let chi = m.and(v1, nv2).unwrap();
        let s = from_characteristic(&mut m, &space, chi).unwrap().unwrap();
        assert_eq!(s.components(), &[Bdd::TRUE, Bdd::FALSE]);
        assert!(s.is_canonical(&mut m, &space).unwrap());
    }

    #[test]
    fn exhaustive_roundtrip_all_3var_sets() {
        // Every nonempty subset of {0,1}^3: from_characteristic must give a
        // canonical vector whose characteristic function is the original.
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        for mask in 1u32..256 {
            let mut chi = Bdd::FALSE;
            for pt in 0..8 {
                if mask & (1 << pt) != 0 {
                    let bits: Vec<bool> = (0..3).map(|i| (pt >> (2 - i)) & 1 == 1).collect();
                    let mut cube = Bdd::TRUE;
                    for (i, &b) in bits.iter().enumerate() {
                        let lit = if b {
                            m.var(Var(i as u32))
                        } else {
                            m.nvar(Var(i as u32))
                        };
                        cube = m.and(cube, lit).unwrap();
                    }
                    chi = m.or(chi, cube).unwrap();
                }
            }
            let f = from_characteristic(&mut m, &space, chi).unwrap().unwrap();
            assert!(
                f.is_canonical(&mut m, &space).unwrap(),
                "mask {mask:#x} not canonical"
            );
            let back = to_characteristic(&mut m, &space, &f).unwrap();
            assert_eq!(back, chi, "mask {mask:#x} roundtrip failed");
        }
    }

    #[test]
    fn complement_roundtrip() {
        let mut m = BddManager::new(3);
        let (space, chi) = table1_set(&mut m);
        let f = from_characteristic(&mut m, &space, chi).unwrap().unwrap();
        let c = complement_via_characteristic(&mut m, &space, &f)
            .unwrap()
            .unwrap();
        let c_chi = to_characteristic(&mut m, &space, &c).unwrap();
        let expect = m.not(chi);
        assert_eq!(c_chi, expect);
        // Complement of the universe is empty.
        let u = from_characteristic(&mut m, &space, Bdd::TRUE)
            .unwrap()
            .unwrap();
        assert!(complement_via_characteristic(&mut m, &space, &u)
            .unwrap()
            .is_none());
    }

    #[test]
    fn works_with_permuted_component_order() {
        // Component order 3,1,2 over the same BDD variables: conversions
        // remain correct (weights differ, so the vector differs).
        let mut m = BddManager::new(3);
        let space = Space::new(vec![Var(2), Var(0), Var(1)]).unwrap();
        let v1 = m.var(Var(0));
        let v2 = m.var(Var(1));
        let v12 = m.and(v1, v2).unwrap();
        let chi = m.not(v12);
        let f = from_characteristic(&mut m, &space, chi).unwrap().unwrap();
        assert!(f.is_canonical(&mut m, &space).unwrap());
        let back = to_characteristic(&mut m, &space, &f).unwrap();
        assert_eq!(back, chi);
    }
}
