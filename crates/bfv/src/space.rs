//! The component space: component order and choice variables.

use bfvr_bdd::Var;

use crate::{BfvError, Result};

/// The component space of a family of Boolean functional vectors.
///
/// A space fixes the number of components `n`, the *component order*
/// (index 0 is the highest-weight component in the paper's distance
/// metric) and the *choice variable* assigned to each component.
///
/// The paper uses the same order for components and BDD variables, which
/// is also the efficient configuration here; the algorithms remain correct
/// for any injective assignment, which is what makes component
/// *reordering* (the paper's future-work item, see [`crate::reparam`] and
/// the ordering benches) expressible without rebuilding the manager.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Space {
    vars: Vec<Var>,
}

impl Space {
    /// Creates a space with the given choice variables, in component
    /// (weight) order.
    ///
    /// # Errors
    ///
    /// Returns [`BfvError::EmptySpace`] for an empty list and
    /// [`BfvError::DuplicateChoiceVar`] if a variable repeats.
    pub fn new(vars: Vec<Var>) -> Result<Self> {
        if vars.is_empty() {
            return Err(BfvError::EmptySpace);
        }
        let mut sorted: Vec<u32> = vars.iter().map(|v| v.0).collect();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                return Err(BfvError::DuplicateChoiceVar { var: w[0] });
            }
        }
        Ok(Space { vars })
    }

    /// A space over the first `n` manager variables, in order — the
    /// paper's standard configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn contiguous(n: u32) -> Self {
        assert!(n > 0, "component space must be non-empty");
        Space {
            vars: (0..n).map(Var).collect(),
        }
    }

    /// Number of components.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Always false: spaces have at least one component.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Choice variable of component `i` (0-based, weight order).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    #[must_use]
    pub fn var(&self, i: usize) -> Var {
        self.vars[i]
    }

    /// All choice variables in component order.
    #[inline]
    #[must_use]
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// A space with the same variables in a permuted component order.
    ///
    /// `perm[new_index] = old_index`. Used to study component reordering.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..len()`.
    #[must_use]
    pub fn permuted(&self, perm: &[usize]) -> Space {
        assert_eq!(perm.len(), self.vars.len(), "permutation length mismatch");
        let mut seen = vec![false; perm.len()];
        let vars = perm
            .iter()
            .map(|&old| {
                assert!(old < self.vars.len() && !seen[old], "not a permutation");
                seen[old] = true;
                self.vars[old]
            })
            .collect();
        Space { vars }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_space() {
        let s = Space::contiguous(3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.var(2), Var(2));
        assert_eq!(s.vars(), &[Var(0), Var(1), Var(2)]);
        assert!(!s.is_empty());
    }

    #[test]
    fn rejects_duplicates_and_empty() {
        assert_eq!(
            Space::new(vec![Var(1), Var(1)]).unwrap_err(),
            BfvError::DuplicateChoiceVar { var: 1 }
        );
        assert_eq!(Space::new(vec![]).unwrap_err(), BfvError::EmptySpace);
    }

    #[test]
    fn non_contiguous_vars_allowed() {
        let s = Space::new(vec![Var(4), Var(0), Var(2)]).unwrap();
        assert_eq!(s.var(0), Var(4));
        assert_eq!(s.var(1), Var(0));
    }

    #[test]
    fn permuted_space() {
        let s = Space::contiguous(3);
        let p = s.permuted(&[2, 0, 1]);
        assert_eq!(p.vars(), &[Var(2), Var(0), Var(1)]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permuted_rejects_bad_perm() {
        let s = Space::contiguous(3);
        let _ = s.permuted(&[0, 0, 1]);
    }
}
