//! # bfvr-bfv — canonical Boolean functional vectors as a set datatype
//!
//! This crate implements the contribution of *"Set Manipulation with
//! Boolean Functional Vectors for Symbolic Reachability Analysis"*
//! (Goel & Bryant, DATE 2003): a complete set algebra operating *directly*
//! on the canonical Boolean functional vector (BFV) representation of a
//! state set, never constructing the characteristic function.
//!
//! A BFV `F = (f_1, …, f_n)` represents the set of bit-vectors in its
//! range. The canonical form (Coudert/Berthet/Madre; Touati et al.) fixes
//! one *choice variable* `v_i` per component and requires that
//!
//! 1. `f_i` depends only on `v_1 … v_i`,
//! 2. members map to themselves (`X ∈ S ⇒ F(X) = X`), and
//! 3. non-members map to the *nearest* member under the component-order
//!    weighted distance.
//!
//! The operations provided here mirror the paper:
//!
//! * [`union`](ops::union) — §2.3, via *exclusion conditions*;
//! * [`intersect`](ops::intersect) — §2.4, via backward *elimination
//!   conditions* and a forward substitution pass;
//! * [`cofactor`](ops::cofactor), [`exists`](ops::exists),
//!   [`forall`](ops::forall) — §2.5;
//! * [`reparameterize`](reparam::reparameterize) — §2.6, canonicalizing a
//!   *parameterized* vector (e.g. the output of symbolic simulation) by
//!   quantifying out its parameters with the parameterized union, under a
//!   dynamic support-based quantification schedule (§3);
//! * [`CDec`](cdec::CDec) — McMillan's conjunctive decomposition and its
//!   correspondence with BFVs (§2.7);
//! * [`sift_components`](reorder::sift_components) — a greedy component
//!   reordering pass (see [`reorder`] for how it divides the paper's
//!   first future-work item with the manager-level variable sifting in
//!   `bfvr-bdd`);
//! * conversions [`to_characteristic`](convert::to_characteristic) /
//!   [`from_characteristic`](convert::from_characteristic) — used only at
//!   the API boundary and as a test oracle, exactly as the paper intends.
//!
//! The empty set, which has no functional vector, is handled by the
//! [`StateSet`] wrapper.
//!
//! ## Example: the paper's Table 1 set
//!
//! ```
//! use bfvr_bdd::{BddManager, Var};
//! use bfvr_bfv::{Space, StateSet};
//!
//! # fn main() -> Result<(), bfvr_bfv::BfvError> {
//! let mut m = BddManager::new(3);
//! let space = Space::new(vec![Var(0), Var(1), Var(2)])?;
//! // S = {000, 001, 010, 011, 100, 101}: all but 11x.
//! let pts: Vec<Vec<bool>> = (0u8..6)
//!     .map(|k| (0..3).map(|i| (k >> (2 - i)) & 1 == 1).collect())
//!     .collect();
//! let s = StateSet::from_points(&mut m, &space, &pts)?;
//! assert_eq!(s.len(&mut m, &space)?, 6);
//! // The canonical vector is (v1, ¬v1 ∧ v2, v3), as in the paper.
//! let f = s.as_bfv().unwrap();
//! assert_eq!(f.component(0), m.var(Var(0)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cdec;
pub mod convert;
mod error;
pub mod ops;
pub mod reorder;
pub mod reparam;
mod set;
mod space;
mod vector;

pub use error::BfvError;
pub use set::StateSet;
pub use space::Space;
pub use vector::{Bfv, Conditions};

/// Result alias for fallible BFV operations.
pub type Result<T, E = BfvError> = std::result::Result<T, E>;
