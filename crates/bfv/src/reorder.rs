//! Component reordering for Boolean functional vectors — the paper's
//! first future-work item ("we would like to develop a component
//! reordering technique for components of the functional vector").
//!
//! The canonical form depends on the *component order* (the weight order
//! of the distance metric). Different orders give canonical vectors of
//! very different shared sizes for the same set, because a component may
//! only refer to *earlier* choice variables: a functional dependency
//! `b = f(a)` is free when `a` precedes `b` and must be inverted (or
//! materialized) otherwise.
//!
//! [`sift_components`] is a greedy component-sifting pass: it repeatedly
//! tries adjacent transpositions of the component order and keeps those
//! that shrink the canonical vector's shared size, until a full sweep
//! makes no progress. Candidate orders are evaluated by re-canonicalizing
//! from the characteristic function, so the search cost is
//! `O(sweeps · n · cost(from_characteristic))` — a deliberately simple
//! baseline for the *component*-order half of the problem.
//!
//! This module is **not** the repository's sifting engine. Dynamic
//! *variable* reordering — Rudell sifting by in-place adjacent level
//! swaps, with the automatic mid-traversal trigger — lives at the
//! manager level in `bfvr-bdd` (`BddManager::sift`,
//! `crates/bdd/src/sift.rs`) and is surveyed in `docs/ordering.md`. The
//! two are complementary and deliberately separate: a canonical BFV ties
//! its component order to the variable order (§3), so the manager-level
//! engine declines BFV lanes, and this pass moves the component axis
//! instead by rebuilding the vector under each candidate order.

use bfvr_bdd::BddManager;

use crate::convert::{from_characteristic, to_characteristic};
use crate::vector::Bfv;
use crate::{Result, Space};

/// The outcome of a sifting pass.
#[derive(Clone, Debug)]
pub struct ReorderResult {
    /// The improved component order as a permutation of the input space
    /// (`perm[new_index] = old_index`).
    pub perm: Vec<usize>,
    /// The space with the improved component order.
    pub space: Space,
    /// The canonical vector of the same set under the new order.
    pub vector: Bfv,
    /// Shared size before sifting.
    pub before: usize,
    /// Shared size after sifting.
    pub after: usize,
    /// Adjacent swaps accepted.
    pub swaps_accepted: usize,
}

/// Greedily improves the component order of `f`'s canonical form by
/// adjacent transpositions (see the module docs).
///
/// The represented set is unchanged; only the canonical encoding moves.
///
/// # Errors
///
/// Fails on BDD resource-limit exhaustion.
pub fn sift_components(m: &mut BddManager, space: &Space, f: &Bfv) -> Result<ReorderResult> {
    let n = space.len();
    let chi = to_characteristic(m, space, f)?;
    let _chi_guard = m.func(chi);
    let before = f.shared_size(m);
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best_vec = f.clone();
    let mut best_space = space.clone();
    let mut best_size = before;
    let mut swaps_accepted = 0usize;
    loop {
        let mut improved = false;
        for i in 0..n - 1 {
            let mut cand = perm.clone();
            cand.swap(i, i + 1);
            let cand_space = space.permuted(&cand);
            let Some(cand_vec) = from_characteristic(m, &cand_space, chi)? else {
                continue; // empty sets have no vector; nothing to reorder
            };
            let size = cand_vec.shared_size(m);
            if size < best_size {
                best_size = size;
                best_vec = cand_vec;
                best_space = cand_space;
                perm = cand;
                swaps_accepted += 1;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    Ok(ReorderResult {
        perm,
        space: best_space,
        vector: best_vec,
        before,
        after: best_size,
        swaps_accepted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateSet;
    use bfvr_bdd::{Bdd, Var};

    /// A set with the dependency "bit 0 = bit 2": under the order
    /// (0,1,2) the dependency points backward and costs nodes; sifting
    /// should move component 2 before component 0.
    fn dependent_set(m: &mut BddManager, space: &Space) -> Bfv {
        // χ = (v0 ↔ v2): {000,001?…} — members where bit0 == bit2.
        let v0 = m.var(Var(0));
        let v2 = m.var(Var(2));
        let chi = m.xnor(v0, v2).unwrap();
        from_characteristic(m, space, chi).unwrap().unwrap()
    }

    #[test]
    fn sifting_never_grows() {
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        let f = dependent_set(&mut m, &space);
        let r = sift_components(&mut m, &space, &f).unwrap();
        assert!(r.after <= r.before, "sifting grew the vector");
        // The set is unchanged.
        let chi_before = to_characteristic(&mut m, &space, &f).unwrap();
        let chi_after = to_characteristic(&mut m, &r.space, &r.vector).unwrap();
        assert_eq!(chi_before, chi_after);
    }

    #[test]
    fn sifting_finds_better_order_for_reversed_dependencies() {
        // Build over 6 vars: three "late" bits each echoing an "early"
        // bit, but with the echo components *first* in the initial order.
        let mut m = BddManager::new(6);
        // Initial order: echoes (vars 0..3) before sources (3..6).
        let space = Space::new(vec![Var(0), Var(1), Var(2), Var(3), Var(4), Var(5)]).unwrap();
        let mut chi = Bdd::TRUE;
        for i in 0..3u32 {
            let e = m.var(Var(i));
            let s = m.var(Var(i + 3));
            let eq = m.xnor(e, s).unwrap();
            chi = m.and(chi, eq).unwrap();
        }
        let f = from_characteristic(&mut m, &space, chi).unwrap().unwrap();
        let r = sift_components(&mut m, &space, &f).unwrap();
        assert!(r.after <= r.before);
        assert!(r.vector.is_canonical(&mut m, &r.space).unwrap());
        let set = StateSet::NonEmpty(r.vector.clone());
        assert_eq!(set.len(&mut m, &r.space).unwrap(), 8);
    }

    #[test]
    fn identity_when_already_optimal() {
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        let u = StateSet::universe(&m, &space).unwrap();
        let f = u.as_bfv().unwrap().clone();
        let r = sift_components(&mut m, &space, &f).unwrap();
        assert_eq!(r.before, r.after);
        assert_eq!(r.swaps_accepted, 0);
        assert_eq!(r.perm, vec![0, 1, 2]);
    }
}
