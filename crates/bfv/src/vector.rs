//! The Boolean functional vector type and its structural queries.

use bfvr_bdd::{Bdd, BddManager, Func, Var};

use crate::{BfvError, Result, Space};

/// A Boolean functional vector: one component function per state bit.
///
/// A `Bfv` produced by this crate's constructors and set operations is in
/// the *canonical form* of the paper (§2.1) with respect to its
/// [`Space`]; a freshly assembled [`Bfv::from_components`] vector need not
/// be — canonicalize it with [`crate::reparam::reparameterize`].
///
/// `Bfv` is a plain value (a vector of node handles); all semantics live
/// in the owning [`bfvr_bdd::BddManager`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Bfv {
    components: Vec<Bdd>,
}

/// The three mutually exclusive selection conditions of one component
/// (paper §2.2): forced-to-one, forced-to-zero and free-choice.
///
/// All three are functions of the *earlier* choice variables only when the
/// vector is canonical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conditions {
    /// `f_i¹` — the component is forced to 1 by earlier choices.
    pub one: Bdd,
    /// `f_i⁰` — the component is forced to 0 by earlier choices.
    pub zero: Bdd,
    /// `f_iᶜ` — the component is a free choice (`f_i = v_i` here).
    pub choice: Bdd,
}

impl Bfv {
    /// Wraps raw component functions (no canonicity is implied).
    ///
    /// # Errors
    ///
    /// Returns [`BfvError::DimensionMismatch`] if the component count does
    /// not match the space.
    pub fn from_components(space: &Space, components: Vec<Bdd>) -> Result<Self> {
        if components.len() != space.len() {
            return Err(BfvError::DimensionMismatch {
                expected: space.len(),
                got: components.len(),
            });
        }
        Ok(Bfv { components })
    }

    /// Number of components.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Always false: vectors have at least one component.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Component function `f_{i+1}` (0-based index).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    #[must_use]
    pub fn component(&self, i: usize) -> Bdd {
        self.components[i]
    }

    /// All component functions in component order.
    #[inline]
    #[must_use]
    pub fn components(&self) -> &[Bdd] {
        &self.components
    }

    /// Extracts the selection conditions of component `i` (paper §2.2).
    ///
    /// For a canonical vector, `f_i = f_i¹ ∨ (f_iᶜ ∧ v_i)`, so the
    /// conditions are recovered from the two cofactors on the component's
    /// own choice variable:
    /// `f_i¹ = f_i|v_i=0`, `f_iᶜ = f_i|v_i=1 ∧ ¬f_i|v_i=0`,
    /// `f_i⁰ = ¬f_i|v_i=1`.
    ///
    /// # Errors
    ///
    /// Fails on BDD resource-limit exhaustion.
    pub fn conditions(&self, m: &mut BddManager, space: &Space, i: usize) -> Result<Conditions> {
        conditions_of(m, self.components[i], space.var(i))
    }

    /// Evaluates the vector on a full choice-variable assignment,
    /// returning the selected member of the represented set.
    ///
    /// `point[i]` is the value of the choice variable of component `i`.
    /// For assignments of members, canonicity guarantees the result equals
    /// the input.
    ///
    /// # Errors
    ///
    /// Returns [`BfvError::DimensionMismatch`] on a wrong-sized point.
    ///
    /// # Panics
    ///
    /// Panics if a component depends on a variable other than the space's
    /// choice variables (i.e. the vector is parameterized).
    pub fn eval(&self, m: &BddManager, space: &Space, point: &[bool]) -> Result<Vec<bool>> {
        if point.len() != space.len() {
            return Err(BfvError::DimensionMismatch {
                expected: space.len(),
                got: point.len(),
            });
        }
        let mut full = vec![false; m.num_vars() as usize];
        for (i, &b) in point.iter().enumerate() {
            full[space.var(i).0 as usize] = b;
        }
        Ok(self.components.iter().map(|&f| m.eval(f, &full)).collect())
    }

    /// Membership test: `X ∈ S ⟺ F(X) = X` (canonicity property 2).
    ///
    /// # Errors
    ///
    /// Returns [`BfvError::DimensionMismatch`] on a wrong-sized point.
    pub fn contains(&self, m: &BddManager, space: &Space, point: &[bool]) -> Result<bool> {
        Ok(self.eval(m, space, point)? == point)
    }

    /// Shared BDD size of all components — the paper's Table 3 metric.
    pub fn shared_size(&self, m: &BddManager) -> usize {
        m.shared_size(&self.components)
    }

    /// Verifies the canonical-form invariants structurally (see the
    /// crate docs): every component depends only on the choice variables
    /// of itself and earlier components, and may depend on an earlier
    /// choice variable only where that component is a free choice.
    ///
    /// This is a complete characterization of canonicity (any vector
    /// passing both checks is the canonical vector of its range), so it
    /// doubles as a test oracle.
    ///
    /// # Errors
    ///
    /// Fails on BDD resource-limit exhaustion.
    pub fn is_canonical(&self, m: &mut BddManager, space: &Space) -> Result<bool> {
        let n = space.len();
        // Support condition.
        for i in 0..n {
            let sup = m.support(self.components[i]);
            let allowed: Vec<Var> = (0..=i).map(|j| space.var(j)).collect();
            for v in sup.vars() {
                if !allowed.contains(&v) {
                    return Ok(false);
                }
            }
        }
        // Invariance condition: f_i varies with v_j (j < i) only where
        // component j is a free choice.
        for i in 0..n {
            for j in 0..i {
                let vj = space.var(j);
                let f0 = m.cofactor(self.components[i], vj, false)?;
                let f1 = m.cofactor(self.components[i], vj, true)?;
                if f0 == f1 {
                    continue;
                }
                let varies = m.xor(f0, f1)?;
                let cj = conditions_of(m, self.components[j], vj)?;
                // `varies` may not depend on v_j; choice_j may. Require
                // varies ⇒ choice_j.
                if !m.leq(varies, cj.choice)? {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Pins all components against garbage collection for as long as the
    /// returned handles live (RAII; dropping them releases the roots).
    pub fn pin(&self, m: &BddManager) -> Vec<Func> {
        self.components.iter().map(|&f| m.func(f)).collect()
    }
}

/// Condition extraction shared by the algorithms (also for parameterized
/// components, where the conditions are functions of parameters too).
pub(crate) fn conditions_of(m: &mut BddManager, f: Bdd, v: Var) -> Result<Conditions> {
    let f0 = m.cofactor(f, v, false)?;
    let f1 = m.cofactor(f, v, true)?;
    let one = f0;
    let zero = m.not(f1);
    let nf0 = m.not(f0);
    let choice = m.and(f1, nf0)?;
    Ok(Conditions { one, zero, choice })
}

/// Reassembles a component from its conditions: `f = one ∨ (choice ∧ v)`.
pub(crate) fn component_from_conditions(m: &mut BddManager, c: Conditions, v: Var) -> Result<Bdd> {
    let vv = m.var(v);
    let cv = m.and(c.choice, vv)?;
    Ok(m.or(c.one, cv)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example: S = {000,001,010,011,100,101},
    /// F = (v1, ¬v1 ∧ v2, v3).
    fn paper_example(m: &mut BddManager) -> (Space, Bfv) {
        let space = Space::contiguous(3);
        let v1 = m.var(Var(0));
        let v2 = m.var(Var(1));
        let v3 = m.var(Var(2));
        let nv1 = m.not(v1);
        let f2 = m.and(nv1, v2).unwrap();
        let f = Bfv::from_components(&space, vec![v1, f2, v3]).unwrap();
        (space, f)
    }

    #[test]
    fn eval_maps_members_to_themselves() {
        let mut m = BddManager::new(3);
        let (space, f) = paper_example(&mut m);
        for k in 0u8..6 {
            let p: Vec<bool> = (0..3).map(|i| (k >> (2 - i)) & 1 == 1).collect();
            assert_eq!(
                f.eval(&m, &space, &p).unwrap(),
                p,
                "member {k:03b} not fixed"
            );
            assert!(f.contains(&m, &space, &p).unwrap());
        }
    }

    #[test]
    fn eval_maps_nonmembers_to_nearest() {
        let mut m = BddManager::new(3);
        let (space, f) = paper_example(&mut m);
        // 110 -> 100, 111 -> 101 (nearest under MSB-weighted distance,
        // exactly Table 1 of the paper).
        assert_eq!(
            f.eval(&m, &space, &[true, true, false]).unwrap(),
            vec![true, false, false]
        );
        assert_eq!(
            f.eval(&m, &space, &[true, true, true]).unwrap(),
            vec![true, false, true]
        );
        assert!(!f.contains(&m, &space, &[true, true, false]).unwrap());
    }

    #[test]
    fn conditions_of_paper_example() {
        let mut m = BddManager::new(3);
        let (space, f) = paper_example(&mut m);
        let c1 = f.conditions(&mut m, &space, 0).unwrap();
        assert!(c1.one.is_false());
        assert!(c1.zero.is_false());
        assert!(c1.choice.is_true());
        let c2 = f.conditions(&mut m, &space, 1).unwrap();
        let v1 = m.var(Var(0));
        let nv1 = m.not(v1);
        assert!(c2.one.is_false());
        assert_eq!(c2.zero, v1); // second bit forced to 0 when first is 1
        assert_eq!(c2.choice, nv1);
    }

    #[test]
    fn conditions_roundtrip() {
        let mut m = BddManager::new(3);
        let (space, f) = paper_example(&mut m);
        for i in 0..3 {
            let c = f.conditions(&mut m, &space, i).unwrap();
            let back = component_from_conditions(&mut m, c, space.var(i)).unwrap();
            assert_eq!(back, f.component(i), "component {i} roundtrip");
        }
    }

    #[test]
    fn conditions_are_exclusive_and_complete() {
        let mut m = BddManager::new(3);
        let (space, f) = paper_example(&mut m);
        for i in 0..3 {
            let c = f.conditions(&mut m, &space, i).unwrap();
            let oz = m.and(c.one, c.zero).unwrap();
            let oc = m.and(c.one, c.choice).unwrap();
            let zc = m.and(c.zero, c.choice).unwrap();
            assert!(oz.is_false() && oc.is_false() && zc.is_false());
            let all = m.or_all(&[c.one, c.zero, c.choice]).unwrap();
            assert!(all.is_true());
        }
    }

    #[test]
    fn paper_example_is_canonical() {
        let mut m = BddManager::new(3);
        let (space, f) = paper_example(&mut m);
        assert!(f.is_canonical(&mut m, &space).unwrap());
    }

    #[test]
    fn non_canonical_detected_support() {
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        // f_1 depends on v2: support violation.
        let v2 = m.var(Var(1));
        let v3 = m.var(Var(2));
        let f = Bfv::from_components(&space, vec![v2, v2, v3]).unwrap();
        assert!(!f.is_canonical(&mut m, &space).unwrap());
    }

    #[test]
    fn non_canonical_detected_invariance() {
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        // Component 1 is forced (constant 1), yet component 2 depends on
        // v1 — the invariance violation from the union discussion (§2.3).
        let v2 = m.var(Var(1));
        let v1 = m.var(Var(0));
        let g = Bfv::from_components(&space, vec![Bdd::TRUE, v2, v1]).unwrap();
        assert!(!g.is_canonical(&mut m, &space).unwrap());
    }

    #[test]
    fn from_components_validates_length() {
        let m = BddManager::new(3);
        let space = Space::contiguous(3);
        let err = Bfv::from_components(&space, vec![Bdd::TRUE]).unwrap_err();
        assert_eq!(
            err,
            BfvError::DimensionMismatch {
                expected: 3,
                got: 1
            }
        );
        let _ = m;
    }

    #[test]
    fn eval_validates_length() {
        let mut m = BddManager::new(3);
        let (space, f) = paper_example(&mut m);
        let err = f.eval(&m, &space, &[true]).unwrap_err();
        assert_eq!(
            err,
            BfvError::DimensionMismatch {
                expected: 3,
                got: 1
            }
        );
    }

    #[test]
    fn shared_size_counts_shared_nodes() {
        let mut m = BddManager::new(3);
        let (_, f) = paper_example(&mut m);
        // v1 (1 node) + ¬v1∧v2 (2 nodes) + v3 (1 node), all disjoint here.
        assert_eq!(f.shared_size(&m), 4);
    }

    #[test]
    fn pin_survives_gc() {
        let mut m = BddManager::new(3);
        let (space, f) = paper_example(&mut m);
        let guards = f.pin(&m);
        m.collect_garbage(&[]);
        // Still evaluable after GC.
        assert!(f.contains(&m, &space, &[false, true, true]).unwrap());
        drop(guards);
    }
}
