//! Re-parameterization: canonicalizing a parameterized vector (§2.6).
//!
//! Symbolic simulation produces a vector `N = (n_1, …, n_k)` whose
//! components are functions of *parameters* — the input variables and the
//! choice variables of the current state set — rather than of the output
//! space's choice variables. For every assignment of the parameters, `N`
//! denotes a single point, so `N` is a *parameterized family* of
//! (trivially canonical) singleton vectors whose union over all parameter
//! assignments is the image set.
//!
//! Because the union of §2.3 is pointwise under parameters, existentially
//! quantifying one parameter `p` is a single vector-level operation,
//! `N|p=0 ∪ N|p=1` — no recursive splitting into exponentially many leaves
//! (the paper: "since we have a union algorithm, we do not necessarily
//! have to split recursively"). Eliminating every parameter yields the
//! canonical vector of the image.
//!
//! The order in which parameters are eliminated matters for intermediate
//! BDD sizes. The paper uses "a dynamic quantification schedule based on a
//! simple support based cost heuristic"; both that and a fixed schedule
//! are provided (the ablation bench compares them).

use bfvr_bdd::{BddManager, Var};

use crate::ops;
use crate::vector::Bfv;
use crate::{Result, Space};

/// Parameter-elimination order for [`reparameterize_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Eliminate parameters in the order given.
    Fixed,
    /// At each step eliminate the parameter on which the fewest components
    /// depend, breaking ties by total size of the dependent components —
    /// the paper's dynamic support-based cost heuristic (§3).
    #[default]
    DynamicSupport,
}

/// Canonicalizes `vec` by existentially quantifying out all `params`,
/// using the default dynamic schedule.
///
/// ```
/// use bfvr_bdd::{BddManager, Var};
/// use bfvr_bfv::{reparam, Bfv, Space, StateSet};
///
/// # fn main() -> Result<(), bfvr_bfv::BfvError> {
/// // Two output bits driven by one parameter p (variable 2):
/// // N = (p, ¬p) has image {01, 10}.
/// let mut m = BddManager::new(3);
/// let space = Space::contiguous(2);
/// let p = m.var(Var(2));
/// let np = m.not(p);
/// let n = Bfv::from_components(&space, vec![p, np])?;
/// let image = reparam::reparameterize(&mut m, &space, &n, &[Var(2)])?;
/// let set = StateSet::NonEmpty(image);
/// assert_eq!(set.len(&mut m, &space)?, 2);
/// assert!(set.contains(&m, &space, &[false, true])?);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Fails on BDD resource-limit exhaustion.
pub fn reparameterize(m: &mut BddManager, space: &Space, vec: &Bfv, params: &[Var]) -> Result<Bfv> {
    reparameterize_with(m, space, vec, params, Schedule::DynamicSupport)
}

/// Canonicalizes `vec` by existentially quantifying out all `params` in
/// the order chosen by `schedule`.
///
/// After the call, the result is the canonical vector (over the space's
/// choice variables) of `{ N(p) : p any parameter assignment }` — the set
/// union over the parameterized family.
///
/// # Errors
///
/// Fails on BDD resource-limit exhaustion.
pub fn reparameterize_with(
    m: &mut BddManager,
    space: &Space,
    vec: &Bfv,
    params: &[Var],
    schedule: Schedule,
) -> Result<Bfv> {
    let mut current = vec.clone();
    let mut remaining: Vec<Var> = params.to_vec();
    while !remaining.is_empty() {
        let idx = match schedule {
            Schedule::Fixed => 0,
            Schedule::DynamicSupport => cheapest_param(m, &current, &remaining),
        };
        let p = remaining.swap_remove(idx);
        // Support check: a parameter no component depends on is free.
        let dependent = current
            .components()
            .iter()
            .any(|&c| m.support(c).contains(p));
        if !dependent {
            continue;
        }
        let f0 = ops::cofactor(m, space, &current, p, false)?;
        let f1 = ops::cofactor(m, space, &current, p, true)?;
        current = ops::union(m, space, &f0, &f1)?;
    }
    Ok(current)
}

/// Index of the cheapest parameter to eliminate next.
fn cheapest_param(m: &BddManager, vec: &Bfv, remaining: &[Var]) -> usize {
    let supports: Vec<_> = vec.components().iter().map(|&c| m.support(c)).collect();
    let mut best = 0usize;
    let mut best_cost = (usize::MAX, usize::MAX);
    for (i, &p) in remaining.iter().enumerate() {
        let dependents: Vec<usize> = (0..vec.len())
            .filter(|&j| supports[j].contains(p))
            .collect();
        let count = dependents.len();
        let size: usize = if count == 0 {
            0
        } else {
            let roots: Vec<_> = dependents.iter().map(|&j| vec.component(j)).collect();
            m.shared_size(&roots)
        };
        let cost = (count, size);
        if cost < best_cost {
            best_cost = cost;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::to_characteristic;
    use crate::StateSet;
    use bfvr_bdd::Bdd;

    /// Output space on vars 0..2, parameters on vars 3..5.
    fn setup() -> (BddManager, Space, [Var; 3]) {
        let m = BddManager::new(6);
        let space = Space::contiguous(3);
        (m, space, [Var(3), Var(4), Var(5)])
    }

    #[test]
    fn identity_image_of_universe() {
        // N_i = p_i: the image over all parameter values is the universe.
        let (mut m, space, ps) = setup();
        let comps = ps.iter().map(|&p| m.var(p)).collect();
        let n = Bfv::from_components(&space, comps).unwrap();
        let r = reparameterize(&mut m, &space, &n, &ps).unwrap();
        assert!(r.is_canonical(&mut m, &space).unwrap());
        let u = StateSet::universe(&m, &space).unwrap();
        assert_eq!(r.components(), u.as_bfv().unwrap().components());
    }

    #[test]
    fn constant_vector_gives_singleton() {
        let (mut m, space, ps) = setup();
        let n = Bfv::from_components(&space, vec![Bdd::TRUE, Bdd::FALSE, Bdd::TRUE]).unwrap();
        let r = reparameterize(&mut m, &space, &n, &ps).unwrap();
        assert_eq!(r.components(), &[Bdd::TRUE, Bdd::FALSE, Bdd::TRUE]);
    }

    #[test]
    fn dependent_bits_image() {
        // N = (p0, p0, ¬p0): image = {110, 001}.
        let (mut m, space, ps) = setup();
        let p0 = m.var(ps[0]);
        let np0 = m.not(p0);
        let n = Bfv::from_components(&space, vec![p0, p0, np0]).unwrap();
        let r = reparameterize(&mut m, &space, &n, &ps).unwrap();
        assert!(r.is_canonical(&mut m, &space).unwrap());
        let s = StateSet::NonEmpty(r);
        let members = s.members(&mut m, &space).unwrap();
        assert_eq!(
            members,
            vec![vec![false, false, true], vec![true, true, false]]
        );
    }

    #[test]
    fn schedules_agree() {
        // Image of a nontrivial function of 3 params under both schedules
        // must be identical (canonicity ⇒ unique representation).
        let (mut m, space, ps) = setup();
        let p0 = m.var(ps[0]);
        let p1 = m.var(ps[1]);
        let p2 = m.var(ps[2]);
        let a = m.xor(p0, p1).unwrap();
        let b = m.and(p1, p2).unwrap();
        let c = m.or(p0, p2).unwrap();
        let n = Bfv::from_components(&space, vec![a, b, c]).unwrap();
        let rd = reparameterize_with(&mut m, &space, &n, &ps, Schedule::DynamicSupport).unwrap();
        let rf = reparameterize_with(&mut m, &space, &n, &ps, Schedule::Fixed).unwrap();
        assert_eq!(rd.components(), rf.components());
        assert!(rd.is_canonical(&mut m, &space).unwrap());
    }

    #[test]
    fn matches_characteristic_image_oracle() {
        // Oracle: image χ(x) = ∃p. ⋀_i (x_i ↔ n_i(p)).
        let (mut m, space, ps) = setup();
        let p0 = m.var(ps[0]);
        let p1 = m.var(ps[1]);
        let x = m.xor(p0, p1).unwrap();
        let o = m.or(p0, p1).unwrap();
        let a = m.and(p0, p1).unwrap();
        let n = Bfv::from_components(&space, vec![x, o, a]).unwrap();
        let r = reparameterize(&mut m, &space, &n, &ps).unwrap();
        assert!(r.is_canonical(&mut m, &space).unwrap());
        let got = to_characteristic(&mut m, &space, &r).unwrap();
        // Oracle.
        let mut rel = Bdd::TRUE;
        for i in 0..3 {
            let xi = m.var(space.var(i));
            let eq = m.xnor(xi, n.component(i)).unwrap();
            rel = m.and(rel, eq).unwrap();
        }
        let pcube = m.cube_from_vars(&ps).unwrap();
        let expect = m.exists(rel, pcube).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn mixed_params_and_choice_vars() {
        // Components already partially canonical (depend on v_0) plus a
        // parameter: quantify only the parameter.
        let (mut m, space, ps) = setup();
        let v0 = m.var(space.var(0));
        let p0 = m.var(ps[0]);
        let f1 = v0;
        let f2 = m.xor(v0, p0).unwrap(); // hmm: not canonical per-point? it is: f2 depends on params + v0
        let f3 = Bdd::FALSE;
        let n = Bfv::from_components(&space, vec![f1, f2, f3]).unwrap();
        let r = reparameterize(&mut m, &space, &n, &[ps[0]]).unwrap();
        assert!(r.is_canonical(&mut m, &space).unwrap());
        // For p0 = 0: (v0, v0, 0) = {000, 110}; for p0 = 1: (v0, ¬v0, 0)
        // = {010, 100}; union = {000, 010, 100, 110} = bit3 = 0.
        let s = StateSet::NonEmpty(r);
        assert_eq!(s.len(&mut m, &space).unwrap(), 4);
        assert!(s.contains(&m, &space, &[true, false, false]).unwrap());
        assert!(!s.contains(&m, &space, &[true, false, true]).unwrap());
    }
}
