//! McMillan's conjunctive decomposition and its BFV correspondence (§2.7).
//!
//! For a canonical vector `F`, the vector of constraints
//! `ĉ_i = (v_i ↔ f_i)` is a canonical *conjunctive decomposition* of the
//! characteristic function: `χ = ⋀_i ĉ_i`, with each `ĉ_i` a function of
//! `v_1 … v_i` only. Where `F` maps an input to a member, `Ĉ` states the
//! per-bit membership constraints — the two views carry exactly the same
//! information, component by component:
//!
//! ```text
//! f_i = f_i¹ ∨ f_iᶜ·v_i        ĉ_i = (v_i ∧ ¬f_i⁰) ∨ (¬v_i ∧ ¬f_i¹)
//! ```
//!
//! [`CDec`] stores the constraint view. Its set operations exploit the
//! correspondence (as the paper observes, the two representations'
//! algorithms "are in essence performing the same operations"): each
//! operation converts the touched components — two BDD operations per
//! component — and reuses the direct BFV algorithms. The
//! [`CDec::conjoin_all`] helper and [`CDec::from_characteristic`]
//! constructor use the `constrain` (generalized-cofactor) operator, the
//! device McMillan's original algorithms are built on.

use bfvr_bdd::{Bdd, BddManager};

use crate::ops;
use crate::vector::Bfv;
use crate::{Result, Space};

/// A canonical conjunctive decomposition `χ = ⋀_i c_i(v_1 … v_i)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CDec {
    constraints: Vec<Bdd>,
}

impl CDec {
    /// Builds the decomposition corresponding to a canonical vector:
    /// `c_i = (v_i ↔ f_i)`.
    ///
    /// # Errors
    ///
    /// Fails on BDD resource-limit exhaustion.
    pub fn from_bfv(m: &mut BddManager, space: &Space, f: &Bfv) -> Result<Self> {
        let mut constraints = Vec::with_capacity(space.len());
        for i in 0..space.len() {
            let v = m.var(space.var(i));
            constraints.push(m.xnor(v, f.component(i))?);
        }
        Ok(CDec { constraints })
    }

    /// Recovers the canonical vector: `f_i¹ = ¬c_i|v_i=0`,
    /// `f_i⁰ = ¬c_i|v_i=1`, `f_i = f_i¹ ∨ (¬f_i¹ ∧ ¬f_i⁰) v_i`.
    ///
    /// # Errors
    ///
    /// Fails on BDD resource-limit exhaustion.
    pub fn to_bfv(&self, m: &mut BddManager, space: &Space) -> Result<Bfv> {
        let mut comps = Vec::with_capacity(space.len());
        for (i, &c) in self.constraints.iter().enumerate() {
            let v = space.var(i);
            let allow0 = m.cofactor(c, v, false)?;
            let allow1 = m.cofactor(c, v, true)?;
            let one = m.not(allow0);
            let choice = m.and(allow0, allow1)?;
            let vv = m.var(v);
            let cv = m.and(choice, vv)?;
            comps.push(m.or(one, cv)?);
        }
        Bfv::from_components(space, comps)
    }

    /// Builds the canonical decomposition of a characteristic function
    /// using the `constrain`-based construction: with
    /// `χ_i = ∃v_{i+1}…v_n. χ`, the i-th constraint is
    /// `c_i = constrain(χ_i, χ_{i-1})`. Returns `None` for `χ = ⊥`.
    ///
    /// # Errors
    ///
    /// Fails on BDD resource-limit exhaustion.
    pub fn from_characteristic(
        m: &mut BddManager,
        space: &Space,
        chi: Bdd,
    ) -> Result<Option<Self>> {
        if chi.is_false() {
            return Ok(None);
        }
        let n = space.len();
        // Projections χ_i, built bottom-up.
        let mut proj = vec![Bdd::TRUE; n + 1];
        proj[n] = chi;
        #[allow(clippy::needless_range_loop)] // proj[i] and proj[i-1] both used
        for i in (1..=n).rev() {
            let cube = m.cube_from_vars(&[space.var(i - 1)])?;
            proj[i - 1] = m.exists(proj[i], cube)?;
        }
        // proj[0] quantifies everything: must be ⊤ for a nonempty set.
        debug_assert!(
            proj[0].is_true()
                || !m
                    .support(proj[0])
                    .vars()
                    .iter()
                    .any(|v| space.vars().contains(v))
        );
        let mut constraints = Vec::with_capacity(n);
        let mut prefix = proj[0];
        #[allow(clippy::needless_range_loop)] // walks proj[i] against the running prefix
        for i in 1..=n {
            // prefix is a projection of a non-empty χ, hence never ⊥.
            let c = m.constrain(proj[i], prefix)?;
            constraints.push(c);
            prefix = proj[i];
        }
        Ok(Some(CDec { constraints }))
    }

    /// The characteristic function `⋀_i c_i`.
    ///
    /// # Errors
    ///
    /// Fails on BDD resource-limit exhaustion.
    pub fn conjoin_all(&self, m: &mut BddManager) -> Result<Bdd> {
        m.and_all(&self.constraints).map_err(Into::into)
    }

    /// The per-component constraints.
    #[must_use]
    pub fn constraints(&self) -> &[Bdd] {
        &self.constraints
    }

    /// Rebuilds a decomposition from a previously extracted constraint
    /// list (e.g. a checkpoint). The caller must pass constraints taken
    /// from a canonical decomposition — `c_i` over `v_1 … v_i` only —
    /// since no canonicity check is performed here.
    #[must_use]
    pub fn from_constraints(constraints: Vec<Bdd>) -> Self {
        CDec { constraints }
    }

    /// Shared BDD size of all constraints.
    pub fn shared_size(&self, m: &BddManager) -> usize {
        m.shared_size(&self.constraints)
    }

    /// Set union through the BFV correspondence.
    ///
    /// # Errors
    ///
    /// Fails on BDD resource-limit exhaustion.
    pub fn union(&self, m: &mut BddManager, space: &Space, other: &CDec) -> Result<CDec> {
        let f = self.to_bfv(m, space)?;
        let g = other.to_bfv(m, space)?;
        let h = ops::union(m, space, &f, &g)?;
        CDec::from_bfv(m, space, &h)
    }

    /// Set intersection through the BFV correspondence; `None` when empty.
    ///
    /// # Errors
    ///
    /// Fails on BDD resource-limit exhaustion.
    pub fn intersect(
        &self,
        m: &mut BddManager,
        space: &Space,
        other: &CDec,
    ) -> Result<Option<CDec>> {
        let f = self.to_bfv(m, space)?;
        let g = other.to_bfv(m, space)?;
        match ops::intersect(m, space, &f, &g)? {
            None => Ok(None),
            Some(h) => Ok(Some(CDec::from_bfv(m, space, &h)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateSet;

    fn pts(bits: &[&str]) -> Vec<Vec<bool>> {
        bits.iter()
            .map(|s| s.chars().map(|c| c == '1').collect())
            .collect()
    }

    fn set_of(m: &mut BddManager, space: &Space, bits: &[&str]) -> Bfv {
        StateSet::from_points(m, space, &pts(bits))
            .unwrap()
            .as_bfv()
            .unwrap()
            .clone()
    }

    #[test]
    fn bfv_roundtrip() {
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        let f = set_of(&mut m, &space, &["000", "001", "010", "011", "100", "101"]);
        let d = CDec::from_bfv(&mut m, &space, &f).unwrap();
        let back = d.to_bfv(&mut m, &space).unwrap();
        assert_eq!(back.components(), f.components());
    }

    use crate::convert;

    #[test]
    fn conjunction_is_characteristic() {
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        let f = set_of(&mut m, &space, &["010", "110", "111"]);
        let d = CDec::from_bfv(&mut m, &space, &f).unwrap();
        let chi = d.conjoin_all(&mut m).unwrap();
        let expect = convert::to_characteristic(&mut m, &space, &f).unwrap();
        assert_eq!(chi, expect);
    }

    #[test]
    fn constraints_depend_on_prefix_vars_only() {
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        let f = set_of(&mut m, &space, &["000", "011", "101", "110"]);
        let d = CDec::from_bfv(&mut m, &space, &f).unwrap();
        for (i, &c) in d.constraints().iter().enumerate() {
            let sup = m.support(c);
            for v in sup.vars() {
                assert!(
                    (0..=i).any(|j| space.var(j) == v),
                    "constraint {i} depends on {v}"
                );
            }
        }
    }

    #[test]
    fn from_characteristic_agrees_with_from_bfv() {
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        for mask in 1u32..=255 {
            let mut points = Vec::new();
            for pt in 0..8 {
                if mask & (1 << pt) != 0 {
                    points.push((0..3).map(|i| (pt >> (2 - i)) & 1 == 1).collect::<Vec<_>>());
                }
            }
            let s = StateSet::from_points(&mut m, &space, &points).unwrap();
            let f = s.as_bfv().unwrap();
            let via_bfv = CDec::from_bfv(&mut m, &space, f).unwrap();
            let chi = s.to_characteristic(&mut m, &space).unwrap();
            let via_chi = CDec::from_characteristic(&mut m, &space, chi)
                .unwrap()
                .unwrap();
            // Both must denote the same set; the constrain-based and
            // correspondence-based constructions coincide on conjunction.
            let a = via_bfv.conjoin_all(&mut m).unwrap();
            let b = via_chi.conjoin_all(&mut m).unwrap();
            assert_eq!(a, b, "mask {mask:#x}");
        }
    }

    #[test]
    fn union_and_intersection() {
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        let a = set_of(&mut m, &space, &["000", "011"]);
        let b = set_of(&mut m, &space, &["011", "111"]);
        let da = CDec::from_bfv(&mut m, &space, &a).unwrap();
        let db = CDec::from_bfv(&mut m, &space, &b).unwrap();
        let du = da.union(&mut m, &space, &db).unwrap();
        let chi_u = du.conjoin_all(&mut m).unwrap();
        let su = StateSet::from_characteristic(&mut m, &space, chi_u).unwrap();
        assert_eq!(
            su.members(&mut m, &space).unwrap(),
            pts(&["000", "011", "111"])
        );
        let di = da.intersect(&mut m, &space, &db).unwrap().unwrap();
        let chi_i = di.conjoin_all(&mut m).unwrap();
        let si = StateSet::from_characteristic(&mut m, &space, chi_i).unwrap();
        assert_eq!(si.members(&mut m, &space).unwrap(), pts(&["011"]));
        // Disjoint intersection is None.
        let c = set_of(&mut m, &space, &["100"]);
        let dc = CDec::from_bfv(&mut m, &space, &c).unwrap();
        assert!(da.intersect(&mut m, &space, &dc).unwrap().is_none());
    }

    #[test]
    fn empty_characteristic() {
        let mut m = BddManager::new(2);
        let space = Space::contiguous(2);
        assert!(CDec::from_characteristic(&mut m, &space, Bdd::FALSE)
            .unwrap()
            .is_none());
    }
}
