//! Error type for BFV operations.

use bfvr_bdd::BddError;
use std::error::Error;
use std::fmt;

/// Errors reported by Boolean-functional-vector operations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BfvError {
    /// An underlying BDD operation failed (resource limits, etc.).
    Bdd(BddError),
    /// The component spaces of two operands differ (length or variables).
    SpaceMismatch,
    /// A `Space` was constructed with a repeated choice variable.
    DuplicateChoiceVar {
        /// The repeated variable level.
        var: u32,
    },
    /// A point/assignment had the wrong number of bits for the space.
    DimensionMismatch {
        /// Number of components in the space.
        expected: usize,
        /// Number of bits supplied.
        got: usize,
    },
    /// A `Space` was constructed with no components.
    EmptySpace,
}

impl fmt::Display for BfvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BfvError::Bdd(e) => write!(f, "bdd operation failed: {e}"),
            BfvError::SpaceMismatch => write!(f, "operands belong to different component spaces"),
            BfvError::DuplicateChoiceVar { var } => {
                write!(f, "choice variable v{var} used for more than one component")
            }
            BfvError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} bits, got {got}")
            }
            BfvError::EmptySpace => write!(f, "component space must have at least one component"),
        }
    }
}

impl Error for BfvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BfvError::Bdd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BddError> for BfvError {
    fn from(e: BddError) -> Self {
        BfvError::Bdd(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = BfvError::from(BddError::Deadline);
        assert!(e.to_string().contains("deadline"));
        assert!(Error::source(&e).is_some());
        assert_eq!(
            BfvError::DimensionMismatch {
                expected: 3,
                got: 2
            }
            .to_string(),
            "expected 3 bits, got 2"
        );
        assert!(Error::source(&BfvError::SpaceMismatch).is_none());
    }
}
