//! A state set: a canonical BFV or the (vector-less) empty set.

use bfvr_bdd::{Bdd, BddManager};

use crate::convert::{from_characteristic, to_characteristic};
use crate::ops;
use crate::vector::Bfv;
use crate::{BfvError, Result, Space};

/// A set of bit-vectors represented by a canonical Boolean functional
/// vector, with the empty set as the tagged special case the paper
/// prescribes (§2.1: "the empty set can be treated as a special case").
///
/// All set algebra is available as methods; they delegate to the
/// algorithms in [`crate::ops`] and handle emptiness uniformly
/// (`∅ ∪ S = S`, `∅ ∩ S = ∅`, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateSet {
    /// The empty set (no functional vector exists for it).
    Empty,
    /// A non-empty set and its canonical vector.
    NonEmpty(Bfv),
}

impl StateSet {
    /// The singleton `{point}`.
    ///
    /// # Errors
    ///
    /// Fails on a wrong-sized point or BDD resource exhaustion.
    pub fn singleton(m: &mut BddManager, space: &Space, point: &[bool]) -> Result<Self> {
        debug_assert!(
            space.vars().iter().all(|v| v.0 < m.num_vars()),
            "space variables must exist in the manager"
        );
        if point.len() != space.len() {
            return Err(BfvError::DimensionMismatch {
                expected: space.len(),
                got: point.len(),
            });
        }
        let comps = point
            .iter()
            .map(|&b| if b { Bdd::TRUE } else { Bdd::FALSE })
            .collect();
        Ok(StateSet::NonEmpty(Bfv::from_components(space, comps)?))
    }

    /// The full space `{0,1}^n` (every component a free choice).
    pub fn universe(m: &BddManager, space: &Space) -> Result<Self> {
        let comps = space.vars().iter().map(|&v| m.var(v)).collect();
        Ok(StateSet::NonEmpty(Bfv::from_components(space, comps)?))
    }

    /// The set of all points matching a partial assignment (`None` = don't
    /// care) — a cube.
    ///
    /// # Errors
    ///
    /// Fails on a wrong-sized pattern or BDD resource exhaustion.
    pub fn from_cube(m: &BddManager, space: &Space, pattern: &[Option<bool>]) -> Result<Self> {
        if pattern.len() != space.len() {
            return Err(BfvError::DimensionMismatch {
                expected: space.len(),
                got: pattern.len(),
            });
        }
        let comps = pattern
            .iter()
            .enumerate()
            .map(|(i, &p)| match p {
                Some(true) => Bdd::TRUE,
                Some(false) => Bdd::FALSE,
                None => m.var(space.var(i)),
            })
            .collect();
        Ok(StateSet::NonEmpty(Bfv::from_components(space, comps)?))
    }

    /// The set containing exactly the given points.
    ///
    /// # Errors
    ///
    /// Fails on wrong-sized points or BDD resource exhaustion.
    pub fn from_points(m: &mut BddManager, space: &Space, points: &[Vec<bool>]) -> Result<Self> {
        let singletons = points
            .iter()
            .map(|p| StateSet::singleton(m, space, p))
            .collect::<Result<Vec<_>>>()?;
        StateSet::union_all(m, space, singletons)
    }

    /// N-ary union by balanced tree reduction (∅ for an empty input).
    ///
    /// Equivalent to folding [`StateSet::union`] but keeps intermediate
    /// operands small and balanced — the usual win when accumulating many
    /// frontier fragments or singletons.
    ///
    /// # Errors
    ///
    /// Fails on BDD resource exhaustion.
    pub fn union_all(
        m: &mut BddManager,
        space: &Space,
        mut sets: Vec<StateSet>,
    ) -> Result<StateSet> {
        if sets.is_empty() {
            return Ok(StateSet::Empty);
        }
        while sets.len() > 1 {
            let mut next = Vec::with_capacity(sets.len().div_ceil(2));
            let mut iter = sets.into_iter();
            while let Some(a) = iter.next() {
                match iter.next() {
                    Some(b) => next.push(a.union(m, space, &b)?),
                    None => next.push(a),
                }
            }
            sets = next;
        }
        Ok(sets.pop().unwrap_or(StateSet::Empty))
    }

    /// Wraps a characteristic function (over the space's choice
    /// variables) into a canonical set.
    ///
    /// # Errors
    ///
    /// Fails on BDD resource exhaustion.
    pub fn from_characteristic(m: &mut BddManager, space: &Space, chi: Bdd) -> Result<Self> {
        Ok(match from_characteristic(m, space, chi)? {
            None => StateSet::Empty,
            Some(f) => StateSet::NonEmpty(f),
        })
    }

    /// The characteristic function of this set (⊥ for the empty set).
    ///
    /// # Errors
    ///
    /// Fails on BDD resource exhaustion.
    pub fn to_characteristic(&self, m: &mut BddManager, space: &Space) -> Result<Bdd> {
        match self {
            StateSet::Empty => Ok(Bdd::FALSE),
            StateSet::NonEmpty(f) => to_characteristic(m, space, f),
        }
    }

    /// Whether this is the empty set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        matches!(self, StateSet::Empty)
    }

    /// Borrows the canonical vector, or `None` for the empty set.
    #[must_use]
    pub fn as_bfv(&self) -> Option<&Bfv> {
        match self {
            StateSet::Empty => None,
            StateSet::NonEmpty(f) => Some(f),
        }
    }

    /// Membership test.
    ///
    /// # Errors
    ///
    /// Fails on a wrong-sized point.
    pub fn contains(&self, m: &BddManager, space: &Space, point: &[bool]) -> Result<bool> {
        match self {
            StateSet::Empty => Ok(false),
            StateSet::NonEmpty(f) => f.contains(m, space, point),
        }
    }

    /// Set union (paper §2.3; identity on the empty operand).
    ///
    /// # Errors
    ///
    /// Fails on BDD resource exhaustion.
    pub fn union(&self, m: &mut BddManager, space: &Space, other: &StateSet) -> Result<StateSet> {
        Ok(match (self, other) {
            (StateSet::Empty, s) | (s, StateSet::Empty) => s.clone(),
            (StateSet::NonEmpty(f), StateSet::NonEmpty(g)) => {
                StateSet::NonEmpty(ops::union(m, space, f, g)?)
            }
        })
    }

    /// Set intersection (paper §2.4).
    ///
    /// # Errors
    ///
    /// Fails on BDD resource exhaustion.
    pub fn intersect(
        &self,
        m: &mut BddManager,
        space: &Space,
        other: &StateSet,
    ) -> Result<StateSet> {
        Ok(match (self, other) {
            (StateSet::Empty, _) | (_, StateSet::Empty) => StateSet::Empty,
            (StateSet::NonEmpty(f), StateSet::NonEmpty(g)) => {
                match ops::intersect(m, space, f, g)? {
                    None => StateSet::Empty,
                    Some(h) => StateSet::NonEmpty(h),
                }
            }
        })
    }

    /// Set difference `self ∖ other`.
    ///
    /// The paper has no direct negation algorithm for functional vectors,
    /// so this (like [`crate::convert::complement_via_characteristic`])
    /// takes the characteristic-function detour for the complement and
    /// then intersects directly — the cost asymmetry is intentional and
    /// documented.
    ///
    /// # Errors
    ///
    /// Fails on BDD resource exhaustion.
    pub fn difference(
        &self,
        m: &mut BddManager,
        space: &Space,
        other: &StateSet,
    ) -> Result<StateSet> {
        match (self, other) {
            (StateSet::Empty, _) => Ok(StateSet::Empty),
            (s, StateSet::Empty) => Ok(s.clone()),
            (StateSet::NonEmpty(_), StateSet::NonEmpty(g)) => {
                match crate::convert::complement_via_characteristic(m, space, g)? {
                    None => Ok(StateSet::Empty), // other is the universe
                    Some(not_g) => self.intersect(m, space, &StateSet::NonEmpty(not_g)),
                }
            }
        }
    }

    /// Symmetric difference `(self ∖ other) ∪ (other ∖ self)`.
    ///
    /// # Errors
    ///
    /// Fails on BDD resource exhaustion.
    pub fn symmetric_difference(
        &self,
        m: &mut BddManager,
        space: &Space,
        other: &StateSet,
    ) -> Result<StateSet> {
        let a = self.difference(m, space, other)?;
        let b = other.difference(m, space, self)?;
        a.union(m, space, &b)
    }

    /// Whether the two sets are disjoint.
    ///
    /// # Errors
    ///
    /// Fails on BDD resource exhaustion.
    pub fn is_disjoint(&self, m: &mut BddManager, space: &Space, other: &StateSet) -> Result<bool> {
        Ok(self.intersect(m, space, other)?.is_empty())
    }

    /// Number of members (exact for spaces of ≤ 127 components, otherwise
    /// a floating-point count rounded to `u128`).
    ///
    /// # Errors
    ///
    /// Fails on BDD resource exhaustion.
    pub fn len(&self, m: &mut BddManager, space: &Space) -> Result<u128> {
        match self {
            StateSet::Empty => Ok(0),
            StateSet::NonEmpty(f) => {
                let chi = to_characteristic(m, space, f)?;
                let total_vars = m.num_vars();
                let pad = total_vars - space.len() as u32;
                match m.sat_count_exact(chi, total_vars) {
                    Some(c) => Ok(c >> pad),
                    None => {
                        let c = m.sat_count(chi, total_vars) / 2f64.powi(pad as i32);
                        Ok(c.round() as u128)
                    }
                }
            }
        }
    }

    /// Enumerates all members (test/debug helper; exponential output).
    ///
    /// # Errors
    ///
    /// Fails on BDD resource exhaustion.
    pub fn members(&self, m: &mut BddManager, space: &Space) -> Result<Vec<Vec<bool>>> {
        let f = match self {
            StateSet::Empty => return Ok(Vec::new()),
            StateSet::NonEmpty(f) => f,
        };
        let chi = to_characteristic(m, space, f)?;
        let mut out = Vec::new();
        let positions: Vec<usize> = space.vars().iter().map(|v| v.0 as usize).collect();
        for cube in m.cubes(chi, m.num_vars()) {
            // χ depends only on choice variables; project and expand.
            let partial: Vec<Option<bool>> = positions.iter().map(|&p| cube[p]).collect();
            expand(&partial, &mut Vec::new(), &mut out);
        }
        out.sort();
        out.dedup();
        Ok(out)
    }
}

fn expand(partial: &[Option<bool>], acc: &mut Vec<bool>, out: &mut Vec<Vec<bool>>) {
    match partial.split_first() {
        None => out.push(acc.clone()),
        Some((&Some(v), rest)) => {
            acc.push(v);
            expand(rest, acc, out);
            acc.pop();
        }
        Some((&None, rest)) => {
            for v in [false, true] {
                acc.push(v);
                expand(rest, acc, out);
                acc.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfvr_bdd::Var;

    fn pts(bits: &[&str]) -> Vec<Vec<bool>> {
        bits.iter()
            .map(|s| s.chars().map(|c| c == '1').collect())
            .collect()
    }

    #[test]
    fn singleton_and_membership() {
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        let s = StateSet::singleton(&mut m, &space, &[true, false, true]).unwrap();
        assert!(s.contains(&m, &space, &[true, false, true]).unwrap());
        assert!(!s.contains(&m, &space, &[true, true, true]).unwrap());
        assert_eq!(s.len(&mut m, &space).unwrap(), 1);
    }

    #[test]
    fn universe_counts() {
        let mut m = BddManager::new(4);
        let space = Space::contiguous(4);
        let u = StateSet::universe(&m, &space).unwrap();
        assert_eq!(u.len(&mut m, &space).unwrap(), 16);
    }

    #[test]
    fn cube_set() {
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        let c = StateSet::from_cube(&m, &space, &[Some(true), None, Some(false)]).unwrap();
        assert_eq!(c.len(&mut m, &space).unwrap(), 2);
        assert_eq!(c.members(&mut m, &space).unwrap(), pts(&["100", "110"]));
    }

    #[test]
    fn from_points_builds_paper_set() {
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        let s = StateSet::from_points(
            &mut m,
            &space,
            &pts(&["000", "001", "010", "011", "100", "101"]),
        )
        .unwrap();
        let f = s.as_bfv().unwrap();
        assert!(f.clone().is_canonical(&mut m, &space).unwrap());
        assert_eq!(s.len(&mut m, &space).unwrap(), 6);
        assert_eq!(
            s.members(&mut m, &space).unwrap(),
            pts(&["000", "001", "010", "011", "100", "101"])
        );
    }

    #[test]
    fn empty_set_behaviour() {
        let mut m = BddManager::new(2);
        let space = Space::contiguous(2);
        let e = StateSet::Empty;
        assert!(e.is_empty());
        assert_eq!(e.len(&mut m, &space).unwrap(), 0);
        assert!(e.members(&mut m, &space).unwrap().is_empty());
        assert!(e.as_bfv().is_none());
        let s = StateSet::singleton(&mut m, &space, &[false, true]).unwrap();
        assert_eq!(e.union(&mut m, &space, &s).unwrap(), s);
        assert!(e.intersect(&mut m, &space, &s).unwrap().is_empty());
        assert!(e.to_characteristic(&mut m, &space).unwrap().is_false());
    }

    #[test]
    fn union_intersection_algebra() {
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        let a = StateSet::from_points(&mut m, &space, &pts(&["000", "011", "101"])).unwrap();
        let b = StateSet::from_points(&mut m, &space, &pts(&["011", "110"])).unwrap();
        let u = a.union(&mut m, &space, &b).unwrap();
        assert_eq!(
            u.members(&mut m, &space).unwrap(),
            pts(&["000", "011", "101", "110"])
        );
        let i = a.intersect(&mut m, &space, &b).unwrap();
        assert_eq!(i.members(&mut m, &space).unwrap(), pts(&["011"]));
        assert!(!a.is_disjoint(&mut m, &space, &b).unwrap());
        let c = StateSet::from_points(&mut m, &space, &pts(&["111"])).unwrap();
        assert!(a.is_disjoint(&mut m, &space, &c).unwrap());
    }

    #[test]
    fn len_with_padding_vars() {
        // Space uses only 2 of 6 manager variables; counting must not be
        // inflated by the unused levels.
        let mut m = BddManager::new(6);
        let space = Space::new(vec![Var(1), Var(4)]).unwrap();
        let u = StateSet::universe(&m, &space).unwrap();
        assert_eq!(u.len(&mut m, &space).unwrap(), 4);
        let s = StateSet::singleton(&mut m, &space, &[true, true]).unwrap();
        assert_eq!(s.len(&mut m, &space).unwrap(), 1);
        let un = u.union(&mut m, &space, &s).unwrap();
        assert_eq!(un.len(&mut m, &space).unwrap(), 4);
    }

    #[test]
    fn dimension_validation() {
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        assert!(matches!(
            StateSet::singleton(&mut m, &space, &[true]).unwrap_err(),
            BfvError::DimensionMismatch {
                expected: 3,
                got: 1
            }
        ));
        assert!(matches!(
            StateSet::from_cube(&m, &space, &[None]).unwrap_err(),
            BfvError::DimensionMismatch {
                expected: 3,
                got: 1
            }
        ));
    }
}

#[cfg(test)]
mod union_all_tests {
    use super::*;

    #[test]
    fn tree_union_matches_fold() {
        let mut m = BddManager::new(4);
        let space = Space::contiguous(4);
        let sets: Vec<StateSet> = (0..11u8)
            .map(|k| {
                let p: Vec<bool> = (0..4).map(|i| (k * 5 + 3) >> i & 1 == 1).collect();
                StateSet::singleton(&mut m, &space, &p).unwrap()
            })
            .collect();
        let tree = StateSet::union_all(&mut m, &space, sets.clone()).unwrap();
        let mut fold = StateSet::Empty;
        for s in &sets {
            fold = fold.union(&mut m, &space, s).unwrap();
        }
        // Canonicity ⇒ identical representation.
        assert_eq!(tree, fold);
        assert!(StateSet::union_all(&mut m, &space, vec![])
            .unwrap()
            .is_empty());
        let one = StateSet::union_all(&mut m, &space, vec![sets[0].clone()]).unwrap();
        assert_eq!(one, sets[0]);
    }
}

#[cfg(test)]
mod difference_tests {
    use super::*;

    fn pts(bits: &[&str]) -> Vec<Vec<bool>> {
        bits.iter()
            .map(|s| s.chars().map(|c| c == '1').collect())
            .collect()
    }

    #[test]
    fn difference_basics() {
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        let a = StateSet::from_points(&mut m, &space, &pts(&["000", "011", "101"])).unwrap();
        let b = StateSet::from_points(&mut m, &space, &pts(&["011", "110"])).unwrap();
        let d = a.difference(&mut m, &space, &b).unwrap();
        assert_eq!(d.members(&mut m, &space).unwrap(), pts(&["000", "101"]));
        let sd = a.symmetric_difference(&mut m, &space, &b).unwrap();
        assert_eq!(
            sd.members(&mut m, &space).unwrap(),
            pts(&["000", "101", "110"])
        );
    }

    #[test]
    fn difference_edge_cases() {
        let mut m = BddManager::new(2);
        let space = Space::contiguous(2);
        let a = StateSet::from_points(&mut m, &space, &pts(&["01", "10"])).unwrap();
        let u = StateSet::universe(&m, &space).unwrap();
        // a \ a = ∅; a \ ∅ = a; ∅ \ a = ∅; a \ U = ∅; U \ a = complement.
        assert!(a.difference(&mut m, &space, &a).unwrap().is_empty());
        assert_eq!(a.difference(&mut m, &space, &StateSet::Empty).unwrap(), a);
        assert!(StateSet::Empty
            .difference(&mut m, &space, &a)
            .unwrap()
            .is_empty());
        assert!(a.difference(&mut m, &space, &u).unwrap().is_empty());
        let c = u.difference(&mut m, &space, &a).unwrap();
        assert_eq!(c.members(&mut m, &space).unwrap(), pts(&["00", "11"]));
        // Symmetric difference with self is empty; with ∅ is identity.
        assert!(a
            .symmetric_difference(&mut m, &space, &a)
            .unwrap()
            .is_empty());
        assert_eq!(
            a.symmetric_difference(&mut m, &space, &StateSet::Empty)
                .unwrap(),
            a
        );
    }
}
