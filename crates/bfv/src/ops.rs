//! Direct set operations on canonical Boolean functional vectors.
//!
//! These are the paper's §2.3–§2.5 algorithms. None of them construct a
//! characteristic function, explicitly or implicitly; they manipulate the
//! per-component *forced-to-one / forced-to-zero / free-choice* conditions
//! (see [`crate::Conditions`]) one component at a time.
//!
//! All three operations are *pointwise under parameters*: if the operand
//! components additionally depend on parameter variables outside the
//! space, the result is, for every assignment of the parameters, the
//! operation applied to the pointwise sets. The re-parameterization
//! procedure of §2.6 ([`crate::reparam`]) relies on exactly this property
//! of [`union`].

use bfvr_bdd::{Bdd, BddManager, Var};

use crate::vector::{component_from_conditions, conditions_of, Bfv, Conditions};
use crate::{Result, Space};

/// Set union `F ∪ G` (paper §2.3).
///
/// ```
/// use bfvr_bdd::BddManager;
/// use bfvr_bfv::{ops, Space, StateSet};
///
/// # fn main() -> Result<(), bfvr_bfv::BfvError> {
/// let mut m = BddManager::new(2);
/// let space = Space::contiguous(2);
/// let a = StateSet::singleton(&mut m, &space, &[false, true])?;
/// let b = StateSet::singleton(&mut m, &space, &[true, false])?;
/// let u = ops::union(&mut m, &space, a.as_bfv().unwrap(), b.as_bfv().unwrap())?;
/// assert_eq!(StateSet::NonEmpty(u).len(&mut m, &space)?, 2);
/// # Ok(())
/// # }
/// ```
///
/// Walks the components in weight order, maintaining the *exclusion
/// conditions* `f^x, g^x`: once a selection step commits to a bit value
/// that one operand cannot produce, that operand is excluded and the
/// remaining selection tracks the other. A bit is forced in the union only
/// if it is forced to that value in both operands, or in the only operand
/// not yet excluded.
///
/// # Errors
///
/// Fails on BDD resource-limit exhaustion.
pub fn union(m: &mut BddManager, space: &Space, f: &Bfv, g: &Bfv) -> Result<Bfv> {
    let n = space.len();
    let mut fx = Bdd::FALSE; // F excluded
    let mut gx = Bdd::FALSE; // G excluded
    let mut comps = Vec::with_capacity(n);
    for i in 0..n {
        let v = space.var(i);
        // Fast path: while no operand is excluded and the components are
        // identical, the union component equals them and the exclusions
        // stay ⊥ (the support optimization of paper §3 — components that
        // do not depend on the variable being quantified are skipped).
        if fx.is_false() && gx.is_false() && f.component(i) == g.component(i) {
            comps.push(f.component(i));
            continue;
        }
        let cf = conditions_of(m, f.component(i), v)?;
        let cg = conditions_of(m, g.component(i), v)?;
        // h¹ = f¹g¹ ∨ f¹gˣ ∨ fˣg¹ ;  h⁰ symmetrically.
        let h1 = three_way(m, cf.one, cg.one, fx, gx)?;
        let h0 = three_way(m, cf.zero, cg.zero, fx, gx)?;
        let forced = m.or(h1, h0)?;
        let hc = m.not(forced);
        let h = component_from_conditions(
            m,
            Conditions {
                one: h1,
                zero: h0,
                choice: hc,
            },
            v,
        )?;
        // Exclusion update: an operand drops out when the selected bit
        // contradicts its forced value.
        let nh = m.not(h);
        fx = exclude(m, fx, cf, h, nh)?;
        gx = exclude(m, gx, cg, h, nh)?;
        comps.push(h);
    }
    Bfv::from_components(space, comps)
}

/// `a·b ∨ a·(other excluded) ∨ (own excluded)·b` for the union's forced
/// conditions.
fn three_way(m: &mut BddManager, a: Bdd, b: Bdd, ax: Bdd, bx: Bdd) -> Result<Bdd> {
    let t1 = m.and(a, b)?;
    let t2 = m.and(a, bx)?;
    let t3 = m.and(ax, b)?;
    m.or_all(&[t1, t2, t3]).map_err(Into::into)
}

/// `x' = x ∨ (forced0 ∧ h) ∨ (forced1 ∧ ¬h)`.
fn exclude(m: &mut BddManager, x: Bdd, c: Conditions, h: Bdd, nh: Bdd) -> Result<Bdd> {
    let z = m.and(c.zero, h)?;
    let o = m.and(c.one, nh)?;
    m.or_all(&[x, z, o]).map_err(Into::into)
}

/// Set intersection `F ∩ G` (paper §2.4); `None` when empty.
///
/// ```
/// use bfvr_bdd::BddManager;
/// use bfvr_bfv::{ops, Space, StateSet};
///
/// # fn main() -> Result<(), bfvr_bfv::BfvError> {
/// let mut m = BddManager::new(2);
/// let space = Space::contiguous(2);
/// let a = StateSet::singleton(&mut m, &space, &[true, true])?;
/// let b = StateSet::universe(&m, &space)?;
/// let i = ops::intersect(&mut m, &space, a.as_bfv().unwrap(), b.as_bfv().unwrap())?;
/// assert!(i.is_some()); // {11} ∩ universe = {11}
/// # Ok(())
/// # }
/// ```
///
/// A *backward* pass computes the elimination conditions `e_i` — the
/// selection prefixes whose every downstream completion conflicts — and a
/// *forward* pass builds the approximation `K` and substitutes the actual
/// selections for the choice variables.
///
/// Two deviations from the paper's (three-term) recurrence, both needed
/// for correctness on adversarial cases found by our property tests:
///
/// * `e_{i-1}` additionally includes the cases where a value *forced* by
///   either operand itself triggers the downstream elimination condition
///   (`(f_i¹ ∨ g_i¹)·e_i|v_i=1` and `(f_i⁰ ∨ g_i⁰)·e_i|v_i=0`); the pure
///   `∀v_i.e_i` term only covers choices free in both operands.
/// * Emptiness is reported when the top-level elimination condition is
///   satisfied (for non-parameterized canonical operands it is constant).
///
/// # Errors
///
/// Fails on BDD resource-limit exhaustion.
pub fn intersect(m: &mut BddManager, space: &Space, f: &Bfv, g: &Bfv) -> Result<Option<Bfv>> {
    let n = space.len();
    // Backward pass: conditions(i) cached for the forward pass.
    let mut cf = Vec::with_capacity(n);
    let mut cg = Vec::with_capacity(n);
    for i in 0..n {
        let v = space.var(i);
        cf.push(conditions_of(m, f.component(i), v)?);
        cg.push(conditions_of(m, g.component(i), v)?);
    }
    // elim[i] = e_i of the paper: conflicts strictly downstream of
    // component i, as a function of v_1..v_i. elim[n] = ⊥.
    let mut elim = vec![Bdd::FALSE; n + 1];
    for i in (0..n).rev() {
        let v = space.var(i);
        let e_lo = m.cofactor(elim[i + 1], v, false)?;
        let e_hi = m.cofactor(elim[i + 1], v, true)?;
        // Direct conflicts at component i+1 (0-based i).
        let d1 = m.and(cf[i].zero, cg[i].one)?;
        let d2 = m.and(cf[i].one, cg[i].zero)?;
        // Forced choices running into downstream eliminations.
        let forced1 = m.or(cf[i].one, cg[i].one)?;
        let forced0 = m.or(cf[i].zero, cg[i].zero)?;
        let fe1 = m.and(forced1, e_hi)?;
        let fe0 = m.and(forced0, e_lo)?;
        // Unavoidable downstream conflict for a genuinely free choice.
        let both = m.and(e_lo, e_hi)?;
        elim[i] = m.or_all(&[d1, d2, fe1, fe0, both])?;
    }
    if elim[0].is_true() {
        return Ok(None);
    }
    debug_assert!(
        {
            let sup = m.support(elim[0]);
            space.vars().iter().all(|v| !sup.contains(*v))
        },
        "top-level elimination condition must not depend on choice variables"
    );
    // Forward pass: approximation K with choice variables substituted by
    // the actual selections so far.
    let mut comps: Vec<Bdd> = Vec::with_capacity(n);
    let mut sub: Vec<Option<Bdd>> = vec![None; m.num_vars() as usize];
    for i in 0..n {
        let v = space.var(i);
        let e_lo = m.cofactor(elim[i + 1], v, false)?;
        let e_hi = m.cofactor(elim[i + 1], v, true)?;
        let k1 = m.or_all(&[cf[i].one, cg[i].one, e_lo])?;
        let k0 = m.or_all(&[cf[i].zero, cg[i].zero, e_hi])?;
        let forced = m.or(k1, k0)?;
        let kc = m.not(forced);
        let k = component_from_conditions(
            m,
            Conditions {
                one: k1,
                zero: k0,
                choice: kc,
            },
            v,
        )?;
        let h = m.vector_compose(k, &sub)?;
        sub[v.0 as usize] = Some(h);
        comps.push(h);
    }
    Ok(Some(Bfv::from_components(space, comps)?))
}

/// Componentwise Shannon cofactor `F|x=val` (paper §2.5).
///
/// `x` may be a choice variable of the space or any parameter variable;
/// for canonical vectors the result is canonical (the represented set is
/// the subset selected when the choice is pinned).
///
/// # Errors
///
/// Fails on BDD resource-limit exhaustion.
pub fn cofactor(m: &mut BddManager, space: &Space, f: &Bfv, x: Var, val: bool) -> Result<Bfv> {
    let mut comps = Vec::with_capacity(f.len());
    for &c in f.components() {
        comps.push(m.cofactor(c, x, val)?);
    }
    Bfv::from_components(space, comps)
}

/// Existential quantification `∃x. F = F|x=0 ∪ F|x=1` (paper §2.5).
///
/// # Errors
///
/// Fails on BDD resource-limit exhaustion.
pub fn exists(m: &mut BddManager, space: &Space, f: &Bfv, x: Var) -> Result<Bfv> {
    let f0 = cofactor(m, space, f, x, false)?;
    let f1 = cofactor(m, space, f, x, true)?;
    union(m, space, &f0, &f1)
}

/// Universal quantification `∀x. F = F|x=0 ∩ F|x=1` (paper §2.5);
/// `None` when the intersection is empty.
///
/// # Errors
///
/// Fails on BDD resource-limit exhaustion.
pub fn forall(m: &mut BddManager, space: &Space, f: &Bfv, x: Var) -> Result<Option<Bfv>> {
    let f0 = cofactor(m, space, f, x, false)?;
    let f1 = cofactor(m, space, f, x, true)?;
    intersect(m, space, &f0, &f1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::to_characteristic;
    use crate::StateSet;

    fn pts(bits: &[&str]) -> Vec<Vec<bool>> {
        bits.iter()
            .map(|s| s.chars().map(|c| c == '1').collect())
            .collect()
    }

    fn set_of(m: &mut BddManager, space: &Space, bits: &[&str]) -> Bfv {
        StateSet::from_points(m, space, &pts(bits))
            .unwrap()
            .as_bfv()
            .unwrap()
            .clone()
    }

    #[test]
    fn union_paper_example() {
        // S' = {010} ∪ {011} from §2.3: naive free choice would
        // over-approximate to {010,011,110,111}; exclusions prevent it.
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        let f = set_of(&mut m, &space, &["010"]);
        let g = set_of(&mut m, &space, &["011"]);
        let h = union(&mut m, &space, &f, &g).unwrap();
        assert!(h.is_canonical(&mut m, &space).unwrap());
        let s = StateSet::NonEmpty(h);
        assert_eq!(s.members(&mut m, &space).unwrap(), pts(&["010", "011"]));
    }

    #[test]
    fn union_with_dependency_coupling() {
        // {000, 110} ∪ {010, 100}: after choosing bit 1, bit 2 is forced
        // differently in each operand — classic exclusion-condition test.
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        let f = set_of(&mut m, &space, &["000", "110"]);
        let g = set_of(&mut m, &space, &["010", "100"]);
        let h = union(&mut m, &space, &f, &g).unwrap();
        assert!(h.is_canonical(&mut m, &space).unwrap());
        let s = StateSet::NonEmpty(h);
        assert_eq!(
            s.members(&mut m, &space).unwrap(),
            pts(&["000", "010", "100", "110"])
        );
    }

    #[test]
    fn union_is_commutative_and_idempotent() {
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        let f = set_of(&mut m, &space, &["001", "100", "111"]);
        let g = set_of(&mut m, &space, &["000", "001"]);
        let fg = union(&mut m, &space, &f, &g).unwrap();
        let gf = union(&mut m, &space, &g, &f).unwrap();
        assert_eq!(fg.components(), gf.components());
        let ff = union(&mut m, &space, &f, &f).unwrap();
        assert_eq!(ff.components(), f.components());
    }

    #[test]
    fn intersect_paper_example() {
        // §2.4: {000,010} ∩ {000,011} = {000}.
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        let f = set_of(&mut m, &space, &["000", "010"]);
        let g = set_of(&mut m, &space, &["000", "011"]);
        let h = intersect(&mut m, &space, &f, &g).unwrap().unwrap();
        assert!(h.is_canonical(&mut m, &space).unwrap());
        let s = StateSet::NonEmpty(h);
        assert_eq!(s.members(&mut m, &space).unwrap(), pts(&["000"]));
    }

    #[test]
    fn intersect_disjoint_is_none() {
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        let f = set_of(&mut m, &space, &["000", "100"]);
        let g = set_of(&mut m, &space, &["001", "010", "101", "110"]);
        assert!(intersect(&mut m, &space, &f, &g).unwrap().is_none());
    }

    #[test]
    fn intersect_forced_conflict_regression() {
        // The case that defeats the three-term elimination recurrence:
        // F = (v1, 0, 0) = {000,100}, G = (v1, v2, ¬v2) = {001,010,101,110}.
        // A forced zero at bit 2 runs into the downstream elimination.
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        let f = set_of(&mut m, &space, &["000", "100"]);
        let g = set_of(&mut m, &space, &["001", "010", "101", "110"]);
        assert!(intersect(&mut m, &space, &f, &g).unwrap().is_none());
    }

    #[test]
    fn intersect_matches_characteristic_oracle() {
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        let f = set_of(&mut m, &space, &["000", "011", "101", "110", "111"]);
        let g = set_of(&mut m, &space, &["001", "011", "100", "111"]);
        let h = intersect(&mut m, &space, &f, &g).unwrap().unwrap();
        assert!(h.is_canonical(&mut m, &space).unwrap());
        let got = to_characteristic(&mut m, &space, &h).unwrap();
        let cf = to_characteristic(&mut m, &space, &f).unwrap();
        let cg = to_characteristic(&mut m, &space, &g).unwrap();
        let expect = m.and(cf, cg).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn cofactor_selects_subset() {
        // Cofactor on choice variable v1 of the Table 1 set.
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        let f = set_of(&mut m, &space, &["000", "001", "010", "011", "100", "101"]);
        let f1 = cofactor(&mut m, &space, &f, Var(0), true).unwrap();
        assert!(f1.is_canonical(&mut m, &space).unwrap());
        let s = StateSet::NonEmpty(f1);
        assert_eq!(s.members(&mut m, &space).unwrap(), pts(&["100", "101"]));
    }

    #[test]
    fn exists_and_forall_on_choice_var() {
        let mut m = BddManager::new(3);
        let space = Space::contiguous(3);
        let f = set_of(&mut m, &space, &["000", "001", "010", "011", "100", "101"]);
        // ∃v3: union of the two v3-cofactors = {000,001,010,011,100,101}
        // (v3 free already).
        let e = exists(&mut m, &space, &f, Var(2)).unwrap();
        let se = StateSet::NonEmpty(e);
        assert_eq!(se.len(&mut m, &space).unwrap(), 6);
        // ∀v1: states reachable under both v1 = 0 and v1 = 1 selections:
        // F|v1=0 = {000,001,010,011}, F|v1=1 = {100,101}; intersection ∅.
        assert!(forall(&mut m, &space, &f, Var(0)).unwrap().is_none());
        // ∀v3 on the cube {00x, 01x}: both cofactors = {000,010} ∩ {001,011}…
        let g = set_of(&mut m, &space, &["000", "001", "010", "011"]);
        let a = forall(&mut m, &space, &g, Var(2)).unwrap();
        assert!(a.is_none(), "bit-3 differs between the cofactors' members");
    }

    #[test]
    fn union_all_pairs_exhaustive_2bit() {
        // All pairs of nonempty 2-bit sets: union must match the oracle.
        let mut m = BddManager::new(2);
        let space = Space::contiguous(2);
        let all_points: Vec<Vec<bool>> = (0..4u8).map(|k| vec![k & 2 != 0, k & 1 != 0]).collect();
        let sets: Vec<Vec<Vec<bool>>> = (1u8..16)
            .map(|mask| {
                (0..4)
                    .filter(|&i| mask & (1 << i) != 0)
                    .map(|i| all_points[i].clone())
                    .collect()
            })
            .collect();
        for sa in &sets {
            for sb in &sets {
                let a = StateSet::from_points(&mut m, &space, sa).unwrap();
                let b = StateSet::from_points(&mut m, &space, sb).unwrap();
                let u = a.union(&mut m, &space, &b).unwrap();
                let mut expect: Vec<Vec<bool>> = sa.iter().chain(sb.iter()).cloned().collect();
                expect.sort();
                expect.dedup();
                assert_eq!(u.members(&mut m, &space).unwrap(), expect);
                assert!(u
                    .as_bfv()
                    .unwrap()
                    .clone()
                    .is_canonical(&mut m, &space)
                    .unwrap());
                let i = a.intersect(&mut m, &space, &b).unwrap();
                let mut expect: Vec<Vec<bool>> =
                    sa.iter().filter(|p| sb.contains(p)).cloned().collect();
                expect.sort();
                assert_eq!(i.members(&mut m, &space).unwrap(), expect);
            }
        }
    }
}
