//! Ternary (three-valued) symbolic simulation with dual-rail encoding —
//! the simulation style of Symbolic Trajectory Evaluation, which the
//! paper cites as the established consumer of Boolean functional vectors
//! (§1: "Boolean functional vectors are also used in Symbolic Trajectory
//! Evaluation").
//!
//! Every signal carries a pair of BDDs `(hi, lo)`: `hi` is the condition
//! under which the signal is definitely 1, `lo` definitely 0; where
//! neither holds the value is the unknown `X`. Gates propagate
//! pessimistically per the standard ternary extension (an AND with one
//! definite 0 input is 0 even if the other input is X), and the rails are
//! kept mutually exclusive by construction.

use bfvr_bdd::{Bdd, BddManager};
use bfvr_netlist::{GateKind, Netlist, NetlistError};

/// A dual-rail ternary value: `hi` = "is 1", `lo` = "is 0"; where neither
/// holds the value is X. Invariant: `hi ∧ lo = ⊥`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TernValue {
    /// Condition under which the signal is definitely 1.
    pub hi: Bdd,
    /// Condition under which the signal is definitely 0.
    pub lo: Bdd,
}

impl TernValue {
    /// The constant 1.
    pub const ONE: TernValue = TernValue {
        hi: Bdd::TRUE,
        lo: Bdd::FALSE,
    };
    /// The constant 0.
    pub const ZERO: TernValue = TernValue {
        hi: Bdd::FALSE,
        lo: Bdd::TRUE,
    };
    /// The unknown X.
    pub const X: TernValue = TernValue {
        hi: Bdd::FALSE,
        lo: Bdd::FALSE,
    };

    /// A two-valued (fully determined) symbolic value: 1 exactly where
    /// `f` holds.
    ///
    /// # Errors
    ///
    /// Fails on BDD resource exhaustion.
    pub fn from_boolean(m: &mut BddManager, f: Bdd) -> Result<Self, bfvr_bdd::BddError> {
        Ok(TernValue {
            hi: f,
            lo: m.not(f),
        })
    }

    /// Whether the value is definite (never X) for every assignment.
    ///
    /// # Errors
    ///
    /// Fails on BDD resource exhaustion.
    pub fn is_definite(&self, m: &mut BddManager) -> Result<bool, bfvr_bdd::BddError> {
        Ok(m.or(self.hi, self.lo)?.is_true())
    }

    /// The concrete ternary value under a full assignment of the BDD
    /// variables: `Some(bit)` when definite, `None` for X.
    pub fn eval(&self, m: &BddManager, asg: &[bool]) -> Option<bool> {
        if m.eval(self.hi, asg) {
            Some(true)
        } else if m.eval(self.lo, asg) {
            Some(false)
        } else {
            None
        }
    }
}

/// A gate-level ternary symbolic simulator over a netlist.
#[derive(Debug)]
pub struct TernarySimulator<'n> {
    net: &'n Netlist,
    order: Vec<usize>,
}

impl<'n> TernarySimulator<'n> {
    /// Prepares a simulator (computes the evaluation order once).
    ///
    /// # Errors
    ///
    /// Fails if the netlist has a combinational cycle (impossible for
    /// validated netlists).
    pub fn new(net: &'n Netlist) -> Result<Self, NetlistError> {
        let order = bfvr_netlist::topo::order(net)?;
        Ok(TernarySimulator { net, order })
    }

    /// The all-X state (nothing known about any latch).
    #[must_use]
    pub fn unknown_state(&self) -> Vec<TernValue> {
        vec![TernValue::X; self.net.latches().len()]
    }

    /// The reset state as definite values.
    #[must_use]
    pub fn reset_state(&self) -> Vec<TernValue> {
        self.net
            .latches()
            .iter()
            .map(|l| {
                if l.init {
                    TernValue::ONE
                } else {
                    TernValue::ZERO
                }
            })
            .collect()
    }

    /// One clock cycle: returns `(next_state, outputs)`.
    ///
    /// # Errors
    ///
    /// Fails on BDD resource exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if `state`/`inputs` lengths do not match the netlist.
    pub fn step(
        &self,
        m: &mut BddManager,
        state: &[TernValue],
        inputs: &[TernValue],
    ) -> Result<(Vec<TernValue>, Vec<TernValue>), bfvr_bdd::BddError> {
        assert_eq!(
            state.len(),
            self.net.latches().len(),
            "state width mismatch"
        );
        assert_eq!(
            inputs.len(),
            self.net.inputs().len(),
            "input width mismatch"
        );
        let mut vals = vec![TernValue::X; self.net.num_signals()];
        for (i, &s) in self.net.inputs().iter().enumerate() {
            vals[s.index()] = inputs[i];
        }
        for (i, l) in self.net.latches().iter().enumerate() {
            vals[l.output.index()] = state[i];
        }
        for &g in &self.order {
            let gate = &self.net.gates()[g];
            let ins: Vec<TernValue> = gate.inputs.iter().map(|&x| vals[x.index()]).collect();
            vals[gate.output.index()] = eval_gate(m, &gate.kind, &ins)?;
        }
        let next = self
            .net
            .latches()
            .iter()
            .map(|l| vals[l.input.index()])
            .collect();
        let outs = self
            .net
            .outputs()
            .iter()
            .map(|&o| vals[o.index()])
            .collect();
        Ok((next, outs))
    }
}

/// Ternary gate evaluation in dual-rail form.
fn eval_gate(
    m: &mut BddManager,
    kind: &GateKind,
    ins: &[TernValue],
) -> Result<TernValue, bfvr_bdd::BddError> {
    let and_all =
        |m: &mut BddManager, ins: &[TernValue]| -> Result<TernValue, bfvr_bdd::BddError> {
            // 1 iff all definitely 1; 0 iff any definitely 0.
            let his: Vec<Bdd> = ins.iter().map(|v| v.hi).collect();
            let los: Vec<Bdd> = ins.iter().map(|v| v.lo).collect();
            Ok(TernValue {
                hi: m.and_all(&his)?,
                lo: m.or_all(&los)?,
            })
        };
    let or_all = |m: &mut BddManager, ins: &[TernValue]| -> Result<TernValue, bfvr_bdd::BddError> {
        let his: Vec<Bdd> = ins.iter().map(|v| v.hi).collect();
        let los: Vec<Bdd> = ins.iter().map(|v| v.lo).collect();
        Ok(TernValue {
            hi: m.or_all(&his)?,
            lo: m.and_all(&los)?,
        })
    };
    let invert = |v: TernValue| TernValue { hi: v.lo, lo: v.hi };
    Ok(match kind {
        GateKind::And => and_all(m, ins)?,
        GateKind::Or => or_all(m, ins)?,
        GateKind::Nand => invert(and_all(m, ins)?),
        GateKind::Nor => invert(or_all(m, ins)?),
        GateKind::Not => invert(ins[0]),
        GateKind::Buf => ins[0],
        GateKind::Xor | GateKind::Xnor => {
            // Parity is definite only where every input is definite.
            let mut acc = TernValue::ZERO;
            for &v in ins {
                // xor(acc, v): 1 iff rails disagree definitely.
                let hl = m.and(acc.hi, v.lo)?;
                let lh = m.and(acc.lo, v.hi)?;
                let hh = m.and(acc.hi, v.hi)?;
                let ll = m.and(acc.lo, v.lo)?;
                acc = TernValue {
                    hi: m.or(hl, lh)?,
                    lo: m.or(hh, ll)?,
                };
            }
            if matches!(kind, GateKind::Xnor) {
                invert(acc)
            } else {
                acc
            }
        }
        GateKind::Const0 => TernValue::ZERO,
        GateKind::Const1 => TernValue::ONE,
        GateKind::Cover(rows) => {
            // Output 1 iff some row definitely matches; 0 iff every row
            // definitely mismatches.
            let mut any_hi = Bdd::FALSE;
            let mut all_lo = Bdd::TRUE;
            for row in rows {
                let mut row_hi = Bdd::TRUE; // definitely matches
                let mut row_lo = Bdd::FALSE; // definitely mismatches
                for (lit, v) in row.iter().zip(ins) {
                    match lit {
                        Some(true) => {
                            row_hi = m.and(row_hi, v.hi)?;
                            row_lo = m.or(row_lo, v.lo)?;
                        }
                        Some(false) => {
                            row_hi = m.and(row_hi, v.lo)?;
                            row_lo = m.or(row_lo, v.hi)?;
                        }
                        None => {}
                    }
                }
                any_hi = m.or(any_hi, row_hi)?;
                all_lo = m.and(all_lo, row_lo)?;
            }
            TernValue {
                hi: any_hi,
                lo: all_lo,
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfvr_bdd::Var;
    use bfvr_netlist::generators;

    #[test]
    fn definite_simulation_matches_boolean() {
        let net = generators::counter(4);
        let sim = TernarySimulator::new(&net).unwrap();
        let mut m = BddManager::new(1);
        let mut state = sim.reset_state();
        // 5 enabled steps: counter must read 5, fully definite.
        for _ in 0..5 {
            let (next, _) = sim.step(&mut m, &state, &[TernValue::ONE]).unwrap();
            state = next;
        }
        let value: u32 = state
            .iter()
            .enumerate()
            .map(|(i, v)| {
                assert!(v.is_definite(&mut m).unwrap());
                u32::from(v.hi.is_true()) << i
            })
            .sum();
        assert_eq!(value, 5);
    }

    #[test]
    fn x_propagates_and_rails_stay_exclusive() {
        let net = generators::counter(3);
        let sim = TernarySimulator::new(&net).unwrap();
        let mut m = BddManager::new(1);
        // X on the enable: next state is X everywhere the count would
        // change, but bit values that cannot change stay definite.
        let state = sim.reset_state(); // 000
        let (next, _) = sim.step(&mut m, &state, &[TernValue::X]).unwrap();
        // Bit 0 flips iff en: unknown. Bits 1,2 stay 0 regardless: known.
        assert_eq!(next[0], TernValue::X);
        assert_eq!(next[1], TernValue::ZERO);
        assert_eq!(next[2], TernValue::ZERO);
        for v in &next {
            let both = m.and(v.hi, v.lo).unwrap();
            assert!(both.is_false(), "rails overlap");
        }
    }

    #[test]
    fn symbolic_inputs_split_cases() {
        // Drive the shift register with a symbolic bit: the output after
        // n cycles equals that variable.
        let n = 4;
        let net = generators::shift_register(n);
        let sim = TernarySimulator::new(&net).unwrap();
        let mut m = BddManager::new(1);
        let d = m.var(Var(0));
        let sym = TernValue::from_boolean(&mut m, d).unwrap();
        let mut state = sim.reset_state();
        for step in 0..n {
            let inp = if step == 0 { sym } else { TernValue::ZERO };
            let (next, _) = sim.step(&mut m, &state, &[inp]).unwrap();
            state = next;
        }
        // After n steps the symbolic bit sits in the last stage; one more
        // step exposes it on the serial output.
        assert_eq!(state[n as usize - 1].hi, d);
        let (_, outs) = sim.step(&mut m, &state, &[TernValue::ZERO]).unwrap();
        assert_eq!(outs[0].hi, d);
        assert!(outs[0].is_definite(&mut m).unwrap());
    }

    #[test]
    fn monotonic_refinement() {
        // Refining an X input to a constant can only refine outputs:
        // wherever the X-run was definite, the refined run agrees.
        let net = bfvr_netlist::circuits::s27();
        let sim = TernarySimulator::new(&net).unwrap();
        let mut m = BddManager::new(1);
        let state = sim.reset_state();
        let x_inputs = vec![TernValue::X; 4];
        let (x_next, x_outs) = sim.step(&mut m, &state, &x_inputs).unwrap();
        for bits in 0u8..16 {
            let conc: Vec<TernValue> = (0..4)
                .map(|i| {
                    if bits >> i & 1 == 1 {
                        TernValue::ONE
                    } else {
                        TernValue::ZERO
                    }
                })
                .collect();
            let (c_next, c_outs) = sim.step(&mut m, &state, &conc).unwrap();
            for (x, c) in x_next.iter().zip(&c_next).chain(x_outs.iter().zip(&c_outs)) {
                if x.hi.is_true() {
                    assert!(c.hi.is_true(), "refinement flipped a definite 1");
                }
                if x.lo.is_true() {
                    assert!(c.lo.is_true(), "refinement flipped a definite 0");
                }
            }
        }
    }

    #[test]
    fn unknown_reset_resolves_in_a_johnson_ring() {
        // From the all-X state, n enabled cycles flush a Johnson counter's
        // stage 0..k with definite values (the inverted feedback is X, but
        // stages fed by definite values become definite).
        let net = generators::shift_register(3);
        let sim = TernarySimulator::new(&net).unwrap();
        let mut m = BddManager::new(1);
        let mut state = sim.unknown_state();
        assert!(state.iter().all(|v| *v == TernValue::X));
        for _ in 0..3 {
            let (next, _) = sim.step(&mut m, &state, &[TernValue::ZERO]).unwrap();
            state = next;
        }
        // After 3 shifts of 0, all stages are definite 0.
        assert!(state.iter().all(|v| *v == TernValue::ZERO));
    }

    #[test]
    fn xor_ternary_semantics() {
        let mut m = BddManager::new(1);
        let x = TernValue::X;
        let one = TernValue::ONE;
        let zero = TernValue::ZERO;
        let g = GateKind::Xor;
        assert_eq!(eval_gate(&mut m, &g, &[one, one]).unwrap(), zero);
        assert_eq!(eval_gate(&mut m, &g, &[one, zero]).unwrap(), one);
        assert_eq!(eval_gate(&mut m, &g, &[one, x]).unwrap(), x);
        // AND absorbs X with a definite 0.
        assert_eq!(eval_gate(&mut m, &GateKind::And, &[zero, x]).unwrap(), zero);
        assert_eq!(eval_gate(&mut m, &GateKind::Or, &[one, x]).unwrap(), one);
        assert_eq!(eval_gate(&mut m, &GateKind::Nand, &[zero, x]).unwrap(), one);
    }
}
