//! Symbolic simulation: image computation by functional composition.
//!
//! The image step of the paper's Figure 2 flow: compose the next-state
//! functions `δ(v, w)` with the components of the current state set's
//! canonical vector `R(v)` (simultaneous composition, because the
//! components themselves depend on the `v` variables), then re-parameterize
//! the resulting vector — whose parameters are the current-state choice
//! variables and the inputs — onto the next-state space, and finally
//! rename next-state variables back to current.

use bfvr_bdd::{Bdd, BddManager, Var};
use bfvr_bfv::reparam::{reparameterize_with, Schedule};
use bfvr_bfv::{Bfv, BfvError};

use crate::encode::EncodedFsm;

/// Computes the canonical vector of the image
/// `{ δ(s, w) : s ∈ R, w ∈ inputs }` of a reached set `R`.
///
/// Uses the dynamic support-based quantification schedule (paper §3).
///
/// # Errors
///
/// Fails on BDD resource-limit exhaustion.
pub fn simulate_image(
    m: &mut BddManager,
    fsm: &EncodedFsm,
    reached: &Bfv,
) -> Result<Bfv, BfvError> {
    simulate_image_with(m, fsm, reached, Schedule::DynamicSupport)
}

/// Like [`simulate_image`] with an explicit quantification schedule.
///
/// # Errors
///
/// Fails on BDD resource-limit exhaustion.
pub fn simulate_image_with(
    m: &mut BddManager,
    fsm: &EncodedFsm,
    reached: &Bfv,
    schedule: Schedule,
) -> Result<Bfv, BfvError> {
    let space = fsm.space();
    let next_space = fsm.next_space();
    // Substitution map: current-state variable of latch l ← component of
    // the reached vector representing that latch.
    let mut map: Vec<Option<Bdd>> = vec![None; m.num_vars() as usize];
    for (c, &var) in space.vars().iter().enumerate() {
        map[var.0 as usize] = Some(reached.component(c));
    }
    // Symbolic simulation: one simultaneous composition per latch.
    let mut composed = Vec::with_capacity(fsm.num_latches());
    for next_fn in fsm.next_fns_in_component_order() {
        composed.push(m.vector_compose(next_fn, &map)?);
    }
    let simulated = Bfv::from_components(&next_space, composed)?;
    // Parameters: the current-state choice variables and the inputs.
    let mut params: Vec<Var> = space.vars().to_vec();
    params.extend(fsm.input_vars());
    let image_next = reparameterize_with(m, &next_space, &simulated, &params, schedule)?;
    // Rename u → v so the image lives in the current-state space again.
    let pairs = fsm.swap_pairs();
    let mut renamed = Vec::with_capacity(image_next.len());
    for &c in image_next.components() {
        renamed.push(m.swap_vars(c, &pairs)?);
    }
    Bfv::from_components(&space, renamed)
}

/// Evaluates the primary outputs over a state set: returns, per output,
/// the condition (over current-state and input variables) under which the
/// output is 1 *restricted to* states in the set — i.e. the output
/// function composed with the set's vector.
///
/// # Errors
///
/// Fails on BDD resource-limit exhaustion.
pub fn simulate_outputs(
    m: &mut BddManager,
    fsm: &EncodedFsm,
    reached: &Bfv,
) -> Result<Vec<Bdd>, BfvError> {
    let space = fsm.space();
    let mut map: Vec<Option<Bdd>> = vec![None; m.num_vars() as usize];
    for (c, &var) in space.vars().iter().enumerate() {
        map[var.0 as usize] = Some(reached.component(c));
    }
    let mut out = Vec::with_capacity(fsm.output_fns().len());
    for &f in fsm.output_fns() {
        out.push(m.vector_compose(f, &map)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::OrderHeuristic;
    use bfvr_bfv::StateSet;
    use bfvr_netlist::generators;

    #[test]
    fn counter_image_steps() {
        let net = generators::counter(3);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let space = fsm.space();
        let init = StateSet::singleton(&mut m, &space, &fsm.initial_state()).unwrap();
        // Image of {0} = {0, 1}; of that = {0, 1, 2}; etc.
        let mut cur = init.as_bfv().unwrap().clone();
        for step in 1..=4u64 {
            cur = simulate_image(&mut m, &fsm, &cur).unwrap();
            assert!(
                cur.is_canonical(&mut m, &space).unwrap(),
                "step {step} not canonical"
            );
            let s = StateSet::NonEmpty(cur.clone());
            assert_eq!(
                s.len(&mut m, &space).unwrap() as u64,
                step + 1,
                "step {step}"
            );
        }
    }

    #[test]
    fn image_matches_relational_oracle() {
        // Cross-check symbolic simulation against the transition-relation
        // image on s27 for a couple of steps.
        let net = bfvr_netlist::circuits::s27();
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let space = fsm.space();
        let init = StateSet::singleton(&mut m, &space, &fsm.initial_state()).unwrap();
        // Build the monolithic transition relation over (v, u, w).
        let mut t = bfvr_bdd::Bdd::TRUE;
        for c in 0..fsm.num_latches() {
            let l = fsm.latch_of_component(c);
            let (_, u) = fsm.state_vars(l);
            let uu = m.var(u);
            let eq = m.xnor(uu, fsm.next_fn(l)).unwrap();
            t = m.and(t, eq).unwrap();
        }
        let mut quant_vars: Vec<Var> = space.vars().to_vec();
        quant_vars.extend(fsm.input_vars());
        let cube = m.cube_from_vars(&quant_vars).unwrap();
        let mut cur = init.as_bfv().unwrap().clone();
        let mut chi = StateSet::NonEmpty(cur.clone())
            .to_characteristic(&mut m, &space)
            .unwrap();
        for step in 0..3 {
            // Oracle image.
            let img = m.and_exists(t, chi, cube).unwrap();
            let img_v = m.swap_vars(img, &fsm.swap_pairs()).unwrap();
            // Symbolic simulation image.
            cur = simulate_image(&mut m, &fsm, &cur).unwrap();
            let got = StateSet::NonEmpty(cur.clone())
                .to_characteristic(&mut m, &space)
                .unwrap();
            assert_eq!(got, img_v, "image mismatch at step {step}");
            chi = img_v;
        }
    }

    #[test]
    fn fixed_and_dynamic_schedules_agree() {
        let net = generators::johnson(5);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::Declaration).unwrap();
        let space = fsm.space();
        let init = StateSet::singleton(&mut m, &space, &fsm.initial_state()).unwrap();
        let f = init.as_bfv().unwrap();
        let a = simulate_image_with(&mut m, &fsm, f, Schedule::DynamicSupport).unwrap();
        let b = simulate_image_with(&mut m, &fsm, f, Schedule::Fixed).unwrap();
        assert_eq!(a.components(), b.components());
    }

    #[test]
    fn outputs_over_state_set() {
        let net = generators::counter(2);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::Declaration).unwrap();
        let space = fsm.space();
        // At state 3 (both bits set) with en=1, the overflow output fires.
        let s3 = StateSet::singleton(&mut m, &space, &[true, true]).unwrap();
        let outs = simulate_outputs(&mut m, &fsm, s3.as_bfv().unwrap()).unwrap();
        // Output = en (since c0=c1=1 inside this set).
        let en = m.var(fsm.input_var(0));
        assert_eq!(outs[0], en);
    }
}
