//! Symbolic simulation: image computation by functional composition.
//!
//! The image step of the paper's Figure 2 flow: compose the next-state
//! functions `δ(v, w)` with the components of the current state set's
//! canonical vector `R(v)` (simultaneous composition, because the
//! components themselves depend on the `v` variables), then re-parameterize
//! the resulting vector — whose parameters are the current-state choice
//! variables and the inputs — onto the next-state space, and finally
//! rename next-state variables back to current.

use bfvr_bdd::{Bdd, BddManager, Var};
use bfvr_bfv::reparam::{reparameterize_with, Schedule};
use bfvr_bfv::{Bfv, BfvError};

use crate::encode::EncodedFsm;

/// Reusable per-call scratch of the image step: the substitution map
/// (sized by the manager's variable count), the re-parameterization
/// variable list and the u→v rename pairs. Holding one of these across
/// a fixed-point run makes every image after the first allocation-free
/// on these buffers instead of rebuilding them per call.
///
/// A scratch is keyed to one manager × FSM pair: do not share it across
/// encodings (the cached parameter list would be stale).
#[derive(Default)]
pub struct ImageScratch {
    map: Vec<Option<Bdd>>,
    params: Vec<Var>,
    pairs: Vec<(Var, Var)>,
    warm: bool,
    /// How many image calls ran on warm (reused) buffers — test
    /// observability for the reuse contract.
    pub(crate) reuses: usize,
    /// Per-worker frozen-task buffers recycled across image calls
    /// (populated only by the frozen parallel path).
    pub(crate) frozen_ws: Vec<bfvr_bdd::FrozenWorkspace>,
}

impl ImageScratch {
    /// Sizes the substitution map for `num_vars` and counts a reuse when
    /// the buffers were already warm.
    pub(crate) fn prepare_for(&mut self, fsm: &EncodedFsm, num_vars: usize) {
        if self.warm {
            self.reuses += 1;
        } else {
            self.params.extend(fsm.space().vars());
            self.params.extend(fsm.input_vars());
            self.pairs = fsm.swap_pairs();
            self.warm = true;
        }
        // The map entries are reset after every compose loop, so a warm
        // map is already all-`None`; only the length may need fixing.
        self.map.resize(num_vars, None);
    }
}

/// Shared tail of the sequential and frozen-parallel image paths: wrap
/// the composed components, re-parameterize onto the next-state space,
/// and rename next-state variables back to current.
pub(crate) fn finish_image(
    m: &mut BddManager,
    fsm: &EncodedFsm,
    composed: Vec<Bdd>,
    schedule: Schedule,
    scratch: &mut ImageScratch,
) -> Result<Bfv, BfvError> {
    let space = fsm.space();
    let next_space = fsm.next_space();
    let simulated = Bfv::from_components(&next_space, composed)?;
    // Parameters: the current-state choice variables and the inputs.
    let image_next = reparameterize_with(m, &next_space, &simulated, &scratch.params, schedule)?;
    // Rename u → v so the image lives in the current-state space again.
    let mut renamed = Vec::with_capacity(image_next.len());
    for &c in image_next.components() {
        renamed.push(m.swap_vars(c, &scratch.pairs)?);
    }
    Bfv::from_components(&space, renamed)
}

/// Computes the canonical vector of the image
/// `{ δ(s, w) : s ∈ R, w ∈ inputs }` of a reached set `R`.
///
/// Uses the dynamic support-based quantification schedule (paper §3).
///
/// # Errors
///
/// Fails on BDD resource-limit exhaustion.
pub fn simulate_image(
    m: &mut BddManager,
    fsm: &EncodedFsm,
    reached: &Bfv,
) -> Result<Bfv, BfvError> {
    simulate_image_with(m, fsm, reached, Schedule::DynamicSupport)
}

/// Like [`simulate_image`] with an explicit quantification schedule.
///
/// # Errors
///
/// Fails on BDD resource-limit exhaustion.
pub fn simulate_image_with(
    m: &mut BddManager,
    fsm: &EncodedFsm,
    reached: &Bfv,
    schedule: Schedule,
) -> Result<Bfv, BfvError> {
    simulate_image_scratch(m, fsm, reached, schedule, &mut ImageScratch::default())
}

/// Like [`simulate_image_with`], reusing the caller-held
/// [`ImageScratch`] buffers across calls — the form the fixed-point
/// backends drive, where the same scratch serves every iteration.
///
/// # Errors
///
/// Fails on BDD resource-limit exhaustion.
pub fn simulate_image_scratch(
    m: &mut BddManager,
    fsm: &EncodedFsm,
    reached: &Bfv,
    schedule: Schedule,
    scratch: &mut ImageScratch,
) -> Result<Bfv, BfvError> {
    let space = fsm.space();
    scratch.prepare_for(fsm, m.num_vars() as usize);
    // Substitution map: current-state variable of latch l ← component of
    // the reached vector representing that latch.
    for (c, &var) in space.vars().iter().enumerate() {
        scratch.map[var.0 as usize] = Some(reached.component(c));
    }
    // Symbolic simulation: one simultaneous composition per latch.
    let mut composed = Vec::with_capacity(fsm.num_latches());
    let mut compose_result = Ok(());
    for next_fn in fsm.next_fns_in_component_order() {
        match m.vector_compose(next_fn, &scratch.map) {
            Ok(c) => composed.push(c),
            Err(e) => {
                compose_result = Err(e);
                break;
            }
        }
    }
    // Leave the scratch map all-`None` for the next call even when a
    // resource limit tripped mid-loop.
    for &var in space.vars() {
        scratch.map[var.0 as usize] = None;
    }
    compose_result?;
    finish_image(m, fsm, composed, schedule, scratch)
}

/// Evaluates the primary outputs over a state set: returns, per output,
/// the condition (over current-state and input variables) under which the
/// output is 1 *restricted to* states in the set — i.e. the output
/// function composed with the set's vector.
///
/// # Errors
///
/// Fails on BDD resource-limit exhaustion.
pub fn simulate_outputs(
    m: &mut BddManager,
    fsm: &EncodedFsm,
    reached: &Bfv,
) -> Result<Vec<Bdd>, BfvError> {
    let space = fsm.space();
    let mut map: Vec<Option<Bdd>> = vec![None; m.num_vars() as usize];
    for (c, &var) in space.vars().iter().enumerate() {
        map[var.0 as usize] = Some(reached.component(c));
    }
    let mut out = Vec::with_capacity(fsm.output_fns().len());
    for &f in fsm.output_fns() {
        out.push(m.vector_compose(f, &map)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::OrderHeuristic;
    use bfvr_bfv::StateSet;
    use bfvr_netlist::generators;

    #[test]
    fn counter_image_steps() {
        let net = generators::counter(3);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let space = fsm.space();
        let init = StateSet::singleton(&mut m, &space, &fsm.initial_state()).unwrap();
        // Image of {0} = {0, 1}; of that = {0, 1, 2}; etc.
        let mut cur = init.as_bfv().unwrap().clone();
        for step in 1..=4u64 {
            cur = simulate_image(&mut m, &fsm, &cur).unwrap();
            assert!(
                cur.is_canonical(&mut m, &space).unwrap(),
                "step {step} not canonical"
            );
            let s = StateSet::NonEmpty(cur.clone());
            assert_eq!(
                s.len(&mut m, &space).unwrap() as u64,
                step + 1,
                "step {step}"
            );
        }
    }

    #[test]
    fn image_matches_relational_oracle() {
        // Cross-check symbolic simulation against the transition-relation
        // image on s27 for a couple of steps.
        let net = bfvr_netlist::circuits::s27();
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let space = fsm.space();
        let init = StateSet::singleton(&mut m, &space, &fsm.initial_state()).unwrap();
        // Build the monolithic transition relation over (v, u, w).
        let mut t = bfvr_bdd::Bdd::TRUE;
        for c in 0..fsm.num_latches() {
            let l = fsm.latch_of_component(c);
            let (_, u) = fsm.state_vars(l);
            let uu = m.var(u);
            let eq = m.xnor(uu, fsm.next_fn(l)).unwrap();
            t = m.and(t, eq).unwrap();
        }
        let mut quant_vars: Vec<Var> = space.vars().to_vec();
        quant_vars.extend(fsm.input_vars());
        let cube = m.cube_from_vars(&quant_vars).unwrap();
        let mut cur = init.as_bfv().unwrap().clone();
        let mut chi = StateSet::NonEmpty(cur.clone())
            .to_characteristic(&mut m, &space)
            .unwrap();
        for step in 0..3 {
            // Oracle image.
            let img = m.and_exists(t, chi, cube).unwrap();
            let img_v = m.swap_vars(img, &fsm.swap_pairs()).unwrap();
            // Symbolic simulation image.
            cur = simulate_image(&mut m, &fsm, &cur).unwrap();
            let got = StateSet::NonEmpty(cur.clone())
                .to_characteristic(&mut m, &space)
                .unwrap();
            assert_eq!(got, img_v, "image mismatch at step {step}");
            chi = img_v;
        }
    }

    #[test]
    fn fixed_and_dynamic_schedules_agree() {
        let net = generators::johnson(5);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::Declaration).unwrap();
        let space = fsm.space();
        let init = StateSet::singleton(&mut m, &space, &fsm.initial_state()).unwrap();
        let f = init.as_bfv().unwrap();
        let a = simulate_image_with(&mut m, &fsm, f, Schedule::DynamicSupport).unwrap();
        let b = simulate_image_with(&mut m, &fsm, f, Schedule::Fixed).unwrap();
        assert_eq!(a.components(), b.components());
    }

    #[test]
    fn scratch_buffers_are_reused_across_iterations() {
        let net = generators::counter(4);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let space = fsm.space();
        let init = StateSet::singleton(&mut m, &space, &fsm.initial_state()).unwrap();
        let mut scratch = ImageScratch::default();
        let mut warm = init.as_bfv().unwrap().clone();
        let mut fresh = warm.clone();
        for step in 0..5 {
            warm =
                simulate_image_scratch(&mut m, &fsm, &warm, Schedule::DynamicSupport, &mut scratch)
                    .unwrap();
            fresh = simulate_image_with(&mut m, &fsm, &fresh, Schedule::DynamicSupport).unwrap();
            assert_eq!(warm.components(), fresh.components(), "step {step}");
        }
        // First call warmed the buffers, the next four reused them …
        assert_eq!(scratch.reuses, 4);
        // … and reuse left no stale substitution entries behind.
        assert!(scratch.map.iter().all(Option::is_none));
        assert_eq!(scratch.params.len(), 4 + 1);
        assert_eq!(scratch.pairs.len(), 4);
    }

    #[test]
    fn outputs_over_state_set() {
        let net = generators::counter(2);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::Declaration).unwrap();
        let space = fsm.space();
        // At state 3 (both bits set) with en=1, the overflow output fires.
        let s3 = StateSet::singleton(&mut m, &space, &[true, true]).unwrap();
        let outs = simulate_outputs(&mut m, &fsm, s3.as_bfv().unwrap()).unwrap();
        // Output = en (since c0=c1=1 inside this set).
        let en = m.var(fsm.input_var(0));
        assert_eq!(outs[0], en);
    }
}
