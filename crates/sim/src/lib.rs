//! # bfvr-sim — symbolic simulation of sequential netlists
//!
//! Bridges the gate-level world (`bfvr-netlist`) and the symbolic world
//! (`bfvr-bdd`, `bfvr-bfv`):
//!
//! * [`OrderHeuristic`] computes static variable orders (the `S1`/`S2`/
//!   `D`/`O` columns of the paper's Table 2 are modeled by the
//!   [`OrderHeuristic::DfsFanin`], [`OrderHeuristic::Declaration`],
//!   [`OrderHeuristic::Reversed`] and [`OrderHeuristic::Random`]
//!   heuristics);
//! * [`EncodedFsm`] holds the BDD encoding of an FSM: one next-state
//!   function per latch over current-state and input variables, with
//!   current/next variables interleaved pairwise in the order;
//! * [`simulate_image`] performs the paper's symbolic-simulation step:
//!   simultaneous composition of the next-state functions with the
//!   components of the current reached set's Boolean functional vector;
//! * [`ternary`] adds an STE-style dual-rail three-valued simulator
//!   (the paper's §1 cites Symbolic Trajectory Evaluation as the
//!   established consumer of functional vectors).
//!
//! ```
//! use bfvr_bdd::BddManager;
//! use bfvr_bfv::StateSet;
//! use bfvr_netlist::generators;
//! use bfvr_sim::{EncodedFsm, OrderHeuristic};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = generators::counter(3);
//! let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin)?;
//! let space = fsm.space();
//! let init = StateSet::singleton(&mut m, &space, &fsm.initial_state())?;
//! let image = bfvr_sim::simulate_image(&mut m, &fsm, init.as_bfv().unwrap())?;
//! // From state 0 the counter reaches {0, 1}.
//! assert_eq!(StateSet::NonEmpty(image).len(&mut m, &space)?, 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod encode;
mod frozen_image;
mod order;
mod simulate;
pub mod ternary;

pub use encode::EncodedFsm;
pub use frozen_image::{resolve_jobs, simulate_image_frozen, FrozenPhases};
pub use order::{OrderHeuristic, Slot};
pub use simulate::{
    simulate_image, simulate_image_scratch, simulate_image_with, simulate_outputs, ImageScratch,
};
