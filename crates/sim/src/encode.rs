//! Netlist → BDD encoding with paired current/next state variables.

use bfvr_bdd::{Bdd, BddManager, Func, Var};
use bfvr_bfv::Space;
use bfvr_netlist::{GateKind, Netlist};

use crate::order::{OrderHeuristic, Slot};

/// A BDD encoding of a finite state machine.
///
/// Variable layout: the slot order (from the [`OrderHeuristic`]) is walked
/// once; each latch slot receives two adjacent levels — current-state
/// variable `v` then next-state variable `u` — and each input slot one
/// level. Pairing `v`/`u` makes the current↔next rename an adjacent swap
/// and gives both representations their preferred interleaving.
#[derive(Debug)]
pub struct EncodedFsm {
    /// `(v, u)` variable pair per latch (indexed by latch index).
    state_vars: Vec<(Var, Var)>,
    /// Variable per primary input (indexed by input index).
    input_vars: Vec<Var>,
    /// Next-state function per latch over `(v, w)` variables.
    next: Vec<Bdd>,
    /// Primary-output functions over `(v, w)` variables.
    outputs: Vec<Bdd>,
    /// RAII roots pinning `next` and `outputs` against garbage collection
    /// for the lifetime of the encoding.
    #[allow(dead_code)]
    roots: Vec<Func>,
    /// Latch indices in component (variable) order.
    comp_to_latch: Vec<usize>,
    init: Vec<bool>,
    name: String,
}

impl EncodedFsm {
    /// Encodes a netlist, creating the manager with the variable order
    /// produced by `heuristic`.
    ///
    /// # Errors
    ///
    /// Fails on BDD resource-limit exhaustion (unbounded by default).
    pub fn encode(
        net: &Netlist,
        heuristic: OrderHeuristic,
    ) -> Result<(BddManager, EncodedFsm), bfvr_bdd::BddError> {
        Self::encode_with_slots(net, &heuristic.slots(net))
    }

    /// Encodes with an explicit slot order (for custom order studies).
    ///
    /// # Errors
    ///
    /// Fails on BDD resource-limit exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is not a complete, duplicate-free cover of the
    /// netlist's latches and inputs, or if the netlist has no latches
    /// (purely combinational circuits have no state to traverse).
    pub fn encode_with_slots(
        net: &Netlist,
        slots: &[Slot],
    ) -> Result<(BddManager, EncodedFsm), bfvr_bdd::BddError> {
        let nl = net.latches().len();
        assert!(
            nl > 0,
            "state traversal needs at least one latch (combinational circuit?)"
        );
        let ni = net.inputs().len();
        assert_eq!(
            slots.len(),
            nl + ni,
            "slot order must cover all latches and inputs"
        );
        let num_vars = 2 * nl as u32 + ni as u32;
        let mut m = BddManager::new(num_vars);
        let mut state_vars = vec![(Var(0), Var(0)); nl];
        let mut input_vars = vec![Var(0); ni];
        let mut comp_to_latch = Vec::with_capacity(nl);
        let mut level = 0u32;
        for &slot in slots {
            match slot {
                Slot::Latch(l) => {
                    state_vars[l] = (Var(level), Var(level + 1));
                    comp_to_latch.push(l);
                    level += 2;
                }
                Slot::Input(i) => {
                    input_vars[i] = Var(level);
                    level += 1;
                }
            }
        }
        debug_assert_eq!(level, num_vars);
        // Build every signal's function over (v, w).
        // Cycles are rejected by netlist validation before encoding starts.
        #[allow(clippy::expect_used)]
        let order = bfvr_netlist::topo::order(net).expect("validated netlists are acyclic");
        let mut funcs: Vec<Bdd> = vec![Bdd::FALSE; net.num_signals()];
        for (i, &s) in net.inputs().iter().enumerate() {
            funcs[s.index()] = m.var(input_vars[i]);
        }
        for (l, latch) in net.latches().iter().enumerate() {
            funcs[latch.output.index()] = m.var(state_vars[l].0);
        }
        for g in order {
            let gate = &net.gates()[g];
            let ins: Vec<Bdd> = gate.inputs.iter().map(|&x| funcs[x.index()]).collect();
            funcs[gate.output.index()] = encode_gate(&mut m, &gate.kind, &ins)?;
        }
        let next: Vec<Bdd> = net
            .latches()
            .iter()
            .map(|l| funcs[l.input.index()])
            .collect();
        let outputs: Vec<Bdd> = net.outputs().iter().map(|&o| funcs[o.index()]).collect();
        let roots: Vec<Func> = next
            .iter()
            .chain(outputs.iter())
            .map(|&f| m.func(f))
            .collect();
        let fsm = EncodedFsm {
            state_vars,
            input_vars,
            next,
            outputs,
            roots,
            comp_to_latch,
            init: net.initial_state(),
            name: net.name().to_string(),
        };
        Ok((m, fsm))
    }

    /// The FSM's name (from the netlist).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of latches (state bits).
    #[must_use]
    pub fn num_latches(&self) -> usize {
        self.next.len()
    }

    /// `(current, next)` variable pair of latch `l`.
    #[must_use]
    pub fn state_vars(&self, l: usize) -> (Var, Var) {
        self.state_vars[l]
    }

    /// Variable of primary input `i`.
    #[must_use]
    pub fn input_var(&self, i: usize) -> Var {
        self.input_vars[i]
    }

    /// All input variables.
    #[must_use]
    pub fn input_vars(&self) -> Vec<Var> {
        self.input_vars.clone()
    }

    /// Next-state function of latch `l`, over current-state and input
    /// variables.
    #[must_use]
    pub fn next_fn(&self, l: usize) -> Bdd {
        self.next[l]
    }

    /// Primary-output functions over current-state and input variables.
    #[must_use]
    pub fn output_fns(&self) -> &[Bdd] {
        &self.outputs
    }

    /// The component space of state sets: current-state variables in
    /// variable order (component order = BDD order, the paper's §3
    /// configuration).
    #[must_use]
    // Encoding allocates one distinct variable per latch, so the space is
    // non-empty and duplicate-free by construction.
    #[allow(clippy::expect_used)]
    pub fn space(&self) -> Space {
        let vars = self
            .comp_to_latch
            .iter()
            .map(|&l| self.state_vars[l].0)
            .collect();
        Space::new(vars).expect("state spaces are non-empty and duplicate-free")
    }

    /// Like [`EncodedFsm::space`] but over the *next*-state variables —
    /// the re-parameterization target of the Figure 2 flow.
    #[must_use]
    // Same construction argument as [`EncodedFsm::space`].
    #[allow(clippy::expect_used)]
    pub fn next_space(&self) -> Space {
        let vars = self
            .comp_to_latch
            .iter()
            .map(|&l| self.state_vars[l].1)
            .collect();
        Space::new(vars).expect("state spaces are non-empty and duplicate-free")
    }

    /// Latch index of component `c` of the state space.
    #[must_use]
    pub fn latch_of_component(&self, c: usize) -> usize {
        self.comp_to_latch[c]
    }

    /// The initial state in *component* order (ready for
    /// [`bfvr_bfv::StateSet::singleton`]).
    #[must_use]
    pub fn initial_state(&self) -> Vec<bool> {
        self.comp_to_latch.iter().map(|&l| self.init[l]).collect()
    }

    /// Next-state functions in component order.
    #[must_use]
    pub fn next_fns_in_component_order(&self) -> Vec<Bdd> {
        self.comp_to_latch.iter().map(|&l| self.next[l]).collect()
    }

    /// The `(v, u)` rename pairs, for swapping a set between the current
    /// and next spaces.
    #[must_use]
    pub fn swap_pairs(&self) -> Vec<(Var, Var)> {
        self.state_vars.to_vec()
    }
}

fn encode_gate(
    m: &mut BddManager,
    kind: &GateKind,
    ins: &[Bdd],
) -> Result<Bdd, bfvr_bdd::BddError> {
    Ok(match kind {
        GateKind::And => m.and_all(ins)?,
        GateKind::Or => m.or_all(ins)?,
        GateKind::Nand => {
            let a = m.and_all(ins)?;
            m.not(a)
        }
        GateKind::Nor => {
            let o = m.or_all(ins)?;
            m.not(o)
        }
        GateKind::Not => m.not(ins[0]),
        GateKind::Buf => ins[0],
        GateKind::Xor | GateKind::Xnor => {
            let mut acc = Bdd::FALSE;
            for &i in ins {
                acc = m.xor(acc, i)?;
            }
            if matches!(kind, GateKind::Xnor) {
                m.not(acc)
            } else {
                acc
            }
        }
        GateKind::Const0 => Bdd::FALSE,
        GateKind::Const1 => Bdd::TRUE,
        GateKind::Cover(rows) => {
            let mut acc = Bdd::FALSE;
            for row in rows {
                let mut cube = Bdd::TRUE;
                for (lit, &f) in row.iter().zip(ins) {
                    match lit {
                        Some(true) => cube = m.and(cube, f)?,
                        Some(false) => {
                            let nf = m.not(f);
                            cube = m.and(cube, nf)?;
                        }
                        None => {}
                    }
                }
                acc = m.or(acc, cube)?;
            }
            acc
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfvr_netlist::generators;

    /// Reference interpreter (mirrors the netlist test util).
    fn step(net: &Netlist, state: &[bool], inputs: &[bool]) -> Vec<bool> {
        let order = bfvr_netlist::topo::order(net).unwrap();
        let mut vals = vec![false; net.num_signals()];
        for (i, &s) in net.inputs().iter().enumerate() {
            vals[s.index()] = inputs[i];
        }
        for (i, l) in net.latches().iter().enumerate() {
            vals[l.output.index()] = state[i];
        }
        for g in order {
            let gate = &net.gates()[g];
            let ins: Vec<bool> = gate.inputs.iter().map(|&x| vals[x.index()]).collect();
            vals[gate.output.index()] = gate.kind.eval(&ins);
        }
        net.latches()
            .iter()
            .map(|l| vals[l.input.index()])
            .collect()
    }

    #[test]
    fn encoding_matches_interpreter() {
        for net in [
            generators::counter(4),
            generators::queue_controller(2),
            bfvr_netlist::circuits::s27(),
        ] {
            let (m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
            let nl = net.latches().len();
            let ni = net.inputs().len();
            let mut rng = 0xA5A5_5A5A_1234_5678u64;
            for _ in 0..64 {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                let st: Vec<bool> = (0..nl).map(|i| rng >> i & 1 == 1).collect();
                let ins: Vec<bool> = (0..ni).map(|i| rng >> (i + nl) & 1 == 1).collect();
                let expect = step(&net, &st, &ins);
                // Build the full-variable assignment.
                let mut asg = vec![false; m.num_vars() as usize];
                for (l, &(v, _)) in fsm.state_vars.iter().enumerate() {
                    asg[v.0 as usize] = st[l];
                }
                for (i, &w) in fsm.input_vars.iter().enumerate() {
                    asg[w.0 as usize] = ins[i];
                }
                #[allow(clippy::needless_range_loop)]
                for l in 0..nl {
                    assert_eq!(
                        m.eval(fsm.next_fn(l), &asg),
                        expect[l],
                        "{} latch {l} mismatch",
                        net.name()
                    );
                }
            }
        }
    }

    #[test]
    fn variable_pairs_are_adjacent() {
        let net = generators::johnson(5);
        for h in [
            OrderHeuristic::DfsFanin,
            OrderHeuristic::Declaration,
            OrderHeuristic::Random(3),
        ] {
            let (_, fsm) = EncodedFsm::encode(&net, h).unwrap();
            #[allow(clippy::needless_range_loop)]
            for l in 0..fsm.num_latches() {
                let (v, u) = fsm.state_vars(l);
                assert_eq!(u.0, v.0 + 1, "pair for latch {l} not adjacent under {h:?}");
            }
        }
    }

    #[test]
    fn space_is_sorted_by_level() {
        let net = generators::counter(5);
        let (_, fsm) = EncodedFsm::encode(&net, OrderHeuristic::Random(9)).unwrap();
        let space = fsm.space();
        for w in space.vars().windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "component order must follow variable order"
            );
        }
        // next_space mirrors it one level down.
        let nspace = fsm.next_space();
        for (v, u) in space.vars().iter().zip(nspace.vars()) {
            assert_eq!(u.0, v.0 + 1);
        }
    }

    #[test]
    fn initial_state_is_permuted_with_components() {
        let net = generators::rotator(4); // latch 0 resets to 1
        let (_, fsm) = EncodedFsm::encode(&net, OrderHeuristic::Reversed).unwrap();
        let init = fsm.initial_state();
        assert_eq!(init.iter().filter(|&&b| b).count(), 1);
        // The hot bit must sit at the component mapped to latch 0.
        let hot = init.iter().position(|&b| b).unwrap();
        assert_eq!(fsm.latch_of_component(hot), 0);
    }

    #[test]
    fn outputs_encoded() {
        let net = generators::counter(3);
        let (m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::Declaration).unwrap();
        assert_eq!(fsm.output_fns().len(), 1);
        // ov = en ∧ c0 ∧ c1 ∧ c2: exactly one satisfying assignment over
        // the 4 relevant variables.
        let ov = fsm.output_fns()[0];
        assert_eq!(
            m.sat_count(ov, m.num_vars()) as u64,
            1 << (m.num_vars() - 4)
        );
    }
}
