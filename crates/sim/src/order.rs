//! Static variable-ordering heuristics.
//!
//! The paper (§3) uses *fixed* variable orders from several sources: the
//! VIS static order (S1), their own tool's static order (S2), orders from
//! dynamic-reordering runs (D), and third-party orders (P/O). We model the
//! spectrum with four heuristics over *slots* (latches and primary
//! inputs); the encoder then assigns each latch slot a pair of adjacent
//! BDD levels (current, next) and each input slot a single level.

use bfvr_netlist::{Netlist, SignalId};

/// One position in the variable order: a latch (by index) or a primary
/// input (by index).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Slot {
    /// Latch `latches()[i]` (will occupy two adjacent levels).
    Latch(usize),
    /// Input `inputs()[i]` (one level).
    Input(usize),
}

/// A recipe for computing a static slot order for a netlist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderHeuristic {
    /// Depth-first traversal from the outputs through the combinational
    /// logic and across latch boundaries, recording inputs and latches in
    /// first-visit order — the classic fan-in ordering used by VIS-style
    /// static ordering (the paper's `S1` flavor).
    DfsFanin,
    /// Declaration order: latches then inputs as the netlist lists them
    /// (the paper's "our tool's static ordering" `S2` flavor).
    Declaration,
    /// Declaration order reversed — a deliberately degraded order standing
    /// in for the paper's externally-sourced `D`/`P` orders on circuits
    /// where those were bad for one representation.
    Reversed,
    /// A seeded random permutation (the paper's "other orders available to
    /// us", `O`).
    Random(u64),
    /// Cone-of-influence interleaving: output cones are laid out smallest
    /// first, each cone's latches and inputs in first-visit order from
    /// its output — so slots that interact through shared logic sit on
    /// adjacent levels. Derived from the `bfvr-nlint` COI analysis.
    Coi,
    /// FORCE (Aloul–Markov–Sakallah): iterative center-of-gravity
    /// placement over the support hypergraph (one hyperedge per latch
    /// next-state function and per output), keeping the lowest-span
    /// order encountered. Derived from the `bfvr-nlint` support
    /// analysis.
    Force,
}

impl OrderHeuristic {
    /// Computes the slot order for a netlist.
    #[must_use]
    pub fn slots(self, net: &Netlist) -> Vec<Slot> {
        match self {
            OrderHeuristic::DfsFanin => dfs_fanin(net),
            OrderHeuristic::Declaration => declaration(net),
            OrderHeuristic::Reversed => {
                let mut s = declaration(net);
                s.reverse();
                s
            }
            OrderHeuristic::Random(seed) => {
                let mut s = declaration(net);
                let mut state = seed | 1;
                for i in (1..s.len()).rev() {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let j = (state % (i as u64 + 1)) as usize;
                    s.swap(i, j);
                }
                s
            }
            OrderHeuristic::Coi => coi_interleaved(net),
            OrderHeuristic::Force => force(net),
        }
    }

    /// Parses a CLI/config order token. Accepts `s1` (DFS fan-in),
    /// `decl` (declaration order; `s2` kept as a legacy alias), `d`
    /// (reversed), `coi`, `force`, and `o:<seed>` for a seeded random
    /// order. Case-insensitive. Returns `None` on anything else.
    #[must_use]
    pub fn parse_token(token: &str) -> Option<Self> {
        match token.to_ascii_lowercase().as_str() {
            "s1" => Some(OrderHeuristic::DfsFanin),
            "s2" | "decl" => Some(OrderHeuristic::Declaration),
            "d" => Some(OrderHeuristic::Reversed),
            "coi" => Some(OrderHeuristic::Coi),
            "force" => Some(OrderHeuristic::Force),
            t => t
                .strip_prefix("o:")
                .and_then(|s| s.parse().ok())
                .map(OrderHeuristic::Random),
        }
    }

    /// Short label used in benchmark tables (mirrors the paper's columns).
    #[must_use]
    pub fn label(self) -> String {
        match self {
            OrderHeuristic::DfsFanin => "S1".to_string(),
            OrderHeuristic::Declaration => "S2".to_string(),
            OrderHeuristic::Reversed => "D".to_string(),
            OrderHeuristic::Random(seed) => format!("O{seed}"),
            OrderHeuristic::Coi => "COI".to_string(),
            OrderHeuristic::Force => "FORCE".to_string(),
        }
    }
}

fn declaration(net: &Netlist) -> Vec<Slot> {
    let mut slots: Vec<Slot> = (0..net.latches().len()).map(Slot::Latch).collect();
    slots.extend((0..net.inputs().len()).map(Slot::Input));
    slots
}

fn dfs_fanin(net: &Netlist) -> Vec<Slot> {
    // Roots: primary outputs first, then latch next-state functions, so
    // the traversal eventually covers every slot.
    let mut roots: Vec<SignalId> = net.outputs().to_vec();
    roots.extend(net.latches().iter().map(|l| l.input));
    dfs_from(net, &roots)
}

/// First-visit depth-first slot collection from `roots`, crossing latch
/// boundaries into next-state cones; slots never reached are appended in
/// declaration order so the cover is complete.
fn dfs_from(net: &Netlist, roots: &[SignalId]) -> Vec<Slot> {
    use bfvr_netlist::Driver;
    let mut seen = vec![false; net.num_signals()];
    let mut order = Vec::new();
    let latch_of: std::collections::HashMap<SignalId, usize> = net
        .latches()
        .iter()
        .enumerate()
        .map(|(i, l)| (l.output, i))
        .collect();
    let input_of: std::collections::HashMap<SignalId, usize> = net
        .inputs()
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i))
        .collect();
    for &root in roots {
        // Iterative DFS; latch boundaries enqueue their next-state cone
        // immediately after the latch is first seen (interleaving related
        // state variables, which is what makes fan-in orders effective).
        let mut stack = vec![root];
        while let Some(s) = stack.pop() {
            if seen[s.index()] {
                continue;
            }
            seen[s.index()] = true;
            if let Some(&l) = latch_of.get(&s) {
                order.push(Slot::Latch(l));
                stack.push(net.latches()[l].input);
            } else if let Some(&i) = input_of.get(&s) {
                order.push(Slot::Input(i));
            } else if let Driver::Gate(g) = net.driver(s) {
                stack.extend(net.gates()[g].inputs.iter().rev().copied());
            }
        }
    }
    // Latches/inputs whose outputs feed nothing are never *visited*; append
    // them in declaration order so the cover is complete.
    for (l, latch) in net.latches().iter().enumerate() {
        if !seen[latch.output.index()] {
            order.push(Slot::Latch(l));
        }
    }
    for (i, &inp) in net.inputs().iter().enumerate() {
        if !seen[inp.index()] {
            order.push(Slot::Input(i));
        }
    }
    order
}

/// COI interleaving: rank the outputs by cone size (smallest cone first)
/// and lay out each cone's slots in first-visit order from its output.
/// Small cones get compact, low-level variable blocks; big cones reuse
/// whatever of their support is already placed and append the rest.
fn coi_interleaved(net: &Netlist) -> Vec<Slot> {
    use bfvr_netlist::topo;
    let mut outs: Vec<(usize, SignalId)> = net
        .outputs()
        .iter()
        .map(|&o| {
            let (lat, inp) = topo::cone_of_influence(net, &[o]);
            (lat.len() + inp.len(), o)
        })
        .collect();
    outs.sort_by_key(|&(size, s)| (size, s.index()));
    let mut roots: Vec<SignalId> = outs.into_iter().map(|(_, s)| s).collect();
    // Latches outside every output cone still need positions near their
    // own next-state support; root their next functions after the cones.
    roots.extend(net.latches().iter().map(|l| l.input));
    dfs_from(net, &roots)
}

/// FORCE (Aloul–Markov–Sakallah DAC'03): treat each latch next-state
/// support (plus the latch itself) and each output support as a
/// hyperedge over the slots, then repeatedly move every slot to the
/// mean of the centers of gravity of its edges and re-sort. Total edge
/// span monotonically shrinks in practice; we keep the best order seen.
fn force(net: &Netlist) -> Vec<Slot> {
    let nl = net.latches().len();
    let ni = net.inputs().len();
    let n = nl + ni;
    if n == 0 {
        return Vec::new();
    }
    // Vertices 0..nl are latches, nl..n are inputs.
    let mut edges: Vec<Vec<usize>> = Vec::new();
    for (l, sup) in bfvr_nlint::support::latch_supports(net).iter().enumerate() {
        let mut e: Vec<usize> = vec![l];
        e.extend(sup.latches.iter().copied());
        e.extend(sup.inputs.iter().map(|&i| nl + i));
        e.sort_unstable();
        e.dedup();
        if e.len() >= 2 {
            edges.push(e);
        }
    }
    for sup in &bfvr_nlint::support::output_supports(net) {
        let mut e: Vec<usize> = sup.latches.clone();
        e.extend(sup.inputs.iter().map(|&i| nl + i));
        e.sort_unstable();
        e.dedup();
        if e.len() >= 2 {
            edges.push(e);
        }
    }
    let span_of = |order: &[usize]| -> usize {
        let mut rank = vec![0usize; n];
        for (r, &v) in order.iter().enumerate() {
            rank[v] = r;
        }
        edges
            .iter()
            .map(|e| {
                let lo = e.iter().map(|&v| rank[v]).min().unwrap_or(0);
                let hi = e.iter().map(|&v| rank[v]).max().unwrap_or(0);
                hi - lo
            })
            .sum()
    };
    let mut order: Vec<usize> = (0..n).collect();
    if edges.is_empty() {
        // Nothing to optimise (e.g. every latch holds a constant).
        return order
            .into_iter()
            .map(|v| {
                if v < nl {
                    Slot::Latch(v)
                } else {
                    Slot::Input(v - nl)
                }
            })
            .collect();
    }
    let mut best = order.clone();
    let mut best_span = span_of(&best);
    for _ in 0..50 {
        let mut rank = vec![0usize; n];
        for (r, &v) in order.iter().enumerate() {
            rank[v] = r;
        }
        // Center of gravity of each hyperedge…
        let cogs: Vec<f64> = edges
            .iter()
            .map(|e| e.iter().map(|&v| rank[v] as f64).sum::<f64>() / e.len() as f64)
            .collect();
        // …pulls each member vertex toward the mean of its edges' COGs.
        let mut acc = vec![0.0f64; n];
        let mut cnt = vec![0usize; n];
        for (ei, e) in edges.iter().enumerate() {
            for &v in e {
                acc[v] += cogs[ei];
                cnt[v] += 1;
            }
        }
        let pos: Vec<f64> = (0..n)
            .map(|v| {
                if cnt[v] > 0 {
                    acc[v] / cnt[v] as f64
                } else {
                    rank[v] as f64
                }
            })
            .collect();
        let mut next: Vec<usize> = (0..n).collect();
        // Stable: ties keep their previous relative order, so the
        // iteration is deterministic and converges to a fixpoint.
        next.sort_by(|&a, &b| pos[a].total_cmp(&pos[b]).then(rank[a].cmp(&rank[b])));
        if next == order {
            break;
        }
        order = next;
        let s = span_of(&order);
        if s < best_span {
            best_span = s;
            best = order.clone();
        }
    }
    best.into_iter()
        .map(|v| {
            if v < nl {
                Slot::Latch(v)
            } else {
                Slot::Input(v - nl)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfvr_netlist::generators;

    fn check_complete(net: &Netlist, slots: &[Slot]) {
        let latches = slots.iter().filter(|s| matches!(s, Slot::Latch(_))).count();
        let inputs = slots.iter().filter(|s| matches!(s, Slot::Input(_))).count();
        assert_eq!(latches, net.latches().len());
        assert_eq!(inputs, net.inputs().len());
        // No duplicates.
        let mut seen = std::collections::HashSet::new();
        for s in slots {
            assert!(seen.insert(format!("{s:?}")), "duplicate slot {s:?}");
        }
    }

    #[test]
    fn all_heuristics_produce_complete_orders() {
        let nets = [
            generators::counter(5),
            generators::paired_registers(3),
            generators::queue_controller(2),
        ];
        for net in &nets {
            for h in [
                OrderHeuristic::DfsFanin,
                OrderHeuristic::Declaration,
                OrderHeuristic::Reversed,
                OrderHeuristic::Random(42),
                OrderHeuristic::Coi,
                OrderHeuristic::Force,
            ] {
                check_complete(net, &h.slots(net));
            }
        }
    }

    #[test]
    fn random_orders_differ_by_seed() {
        let net = generators::counter(8);
        let a = OrderHeuristic::Random(1).slots(&net);
        let b = OrderHeuristic::Random(2).slots(&net);
        assert_ne!(a, b);
        // Same seed is deterministic.
        assert_eq!(a, OrderHeuristic::Random(1).slots(&net));
    }

    #[test]
    fn reversed_is_reverse_of_declaration() {
        let net = generators::johnson(4);
        let mut d = OrderHeuristic::Declaration.slots(&net);
        d.reverse();
        assert_eq!(d, OrderHeuristic::Reversed.slots(&net));
    }

    #[test]
    fn labels() {
        assert_eq!(OrderHeuristic::DfsFanin.label(), "S1");
        assert_eq!(OrderHeuristic::Random(7).label(), "O7");
        assert_eq!(OrderHeuristic::Coi.label(), "COI");
        assert_eq!(OrderHeuristic::Force.label(), "FORCE");
    }

    #[test]
    fn force_never_worse_than_declaration_span() {
        // FORCE keeps the best order it sees, starting from declaration
        // order — so its support span can only shrink or stay put.
        for (name, net) in generators::standard_suite() {
            let span = |slots: &[Slot]| -> usize {
                let nl = net.latches().len();
                let mut rank = std::collections::HashMap::new();
                for (r, s) in slots.iter().enumerate() {
                    let v = match s {
                        Slot::Latch(l) => *l,
                        Slot::Input(i) => nl + i,
                    };
                    rank.insert(v, r);
                }
                let mut total = 0usize;
                for (l, sup) in bfvr_nlint::support::latch_supports(&net).iter().enumerate() {
                    let mut vs: Vec<usize> = vec![l];
                    vs.extend(sup.latches.iter().copied());
                    vs.extend(sup.inputs.iter().map(|&i| nl + i));
                    vs.sort_unstable();
                    vs.dedup();
                    if vs.len() < 2 {
                        continue;
                    }
                    let lo = vs.iter().map(|v| rank[v]).min().unwrap();
                    let hi = vs.iter().map(|v| rank[v]).max().unwrap();
                    total += hi - lo;
                }
                total
            };
            let decl = span(&OrderHeuristic::Declaration.slots(&net));
            let forced = span(&OrderHeuristic::Force.slots(&net));
            assert!(forced <= decl, "{name}: FORCE span {forced} > decl {decl}");
        }
    }
}
