//! Static variable-ordering heuristics.
//!
//! The paper (§3) uses *fixed* variable orders from several sources: the
//! VIS static order (S1), their own tool's static order (S2), orders from
//! dynamic-reordering runs (D), and third-party orders (P/O). We model the
//! spectrum with four heuristics over *slots* (latches and primary
//! inputs); the encoder then assigns each latch slot a pair of adjacent
//! BDD levels (current, next) and each input slot a single level.

use bfvr_netlist::{Netlist, SignalId};

/// One position in the variable order: a latch (by index) or a primary
/// input (by index).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Slot {
    /// Latch `latches()[i]` (will occupy two adjacent levels).
    Latch(usize),
    /// Input `inputs()[i]` (one level).
    Input(usize),
}

/// A recipe for computing a static slot order for a netlist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderHeuristic {
    /// Depth-first traversal from the outputs through the combinational
    /// logic and across latch boundaries, recording inputs and latches in
    /// first-visit order — the classic fan-in ordering used by VIS-style
    /// static ordering (the paper's `S1` flavor).
    DfsFanin,
    /// Declaration order: latches then inputs as the netlist lists them
    /// (the paper's "our tool's static ordering" `S2` flavor).
    Declaration,
    /// Declaration order reversed — a deliberately degraded order standing
    /// in for the paper's externally-sourced `D`/`P` orders on circuits
    /// where those were bad for one representation.
    Reversed,
    /// A seeded random permutation (the paper's "other orders available to
    /// us", `O`).
    Random(u64),
}

impl OrderHeuristic {
    /// Computes the slot order for a netlist.
    #[must_use]
    pub fn slots(self, net: &Netlist) -> Vec<Slot> {
        match self {
            OrderHeuristic::DfsFanin => dfs_fanin(net),
            OrderHeuristic::Declaration => declaration(net),
            OrderHeuristic::Reversed => {
                let mut s = declaration(net);
                s.reverse();
                s
            }
            OrderHeuristic::Random(seed) => {
                let mut s = declaration(net);
                let mut state = seed | 1;
                for i in (1..s.len()).rev() {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let j = (state % (i as u64 + 1)) as usize;
                    s.swap(i, j);
                }
                s
            }
        }
    }

    /// Short label used in benchmark tables (mirrors the paper's columns).
    #[must_use]
    pub fn label(self) -> String {
        match self {
            OrderHeuristic::DfsFanin => "S1".to_string(),
            OrderHeuristic::Declaration => "S2".to_string(),
            OrderHeuristic::Reversed => "D".to_string(),
            OrderHeuristic::Random(seed) => format!("O{seed}"),
        }
    }
}

fn declaration(net: &Netlist) -> Vec<Slot> {
    let mut slots: Vec<Slot> = (0..net.latches().len()).map(Slot::Latch).collect();
    slots.extend((0..net.inputs().len()).map(Slot::Input));
    slots
}

fn dfs_fanin(net: &Netlist) -> Vec<Slot> {
    use bfvr_netlist::Driver;
    let mut seen = vec![false; net.num_signals()];
    let mut order = Vec::new();
    let latch_of: std::collections::HashMap<SignalId, usize> = net
        .latches()
        .iter()
        .enumerate()
        .map(|(i, l)| (l.output, i))
        .collect();
    let input_of: std::collections::HashMap<SignalId, usize> = net
        .inputs()
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i))
        .collect();
    // Roots: primary outputs first, then latch next-state functions, so
    // the traversal eventually covers every slot.
    let mut roots: Vec<SignalId> = net.outputs().to_vec();
    roots.extend(net.latches().iter().map(|l| l.input));
    for root in roots {
        // Iterative DFS; latch boundaries enqueue their next-state cone
        // immediately after the latch is first seen (interleaving related
        // state variables, which is what makes fan-in orders effective).
        let mut stack = vec![root];
        while let Some(s) = stack.pop() {
            if seen[s.index()] {
                continue;
            }
            seen[s.index()] = true;
            if let Some(&l) = latch_of.get(&s) {
                order.push(Slot::Latch(l));
                stack.push(net.latches()[l].input);
            } else if let Some(&i) = input_of.get(&s) {
                order.push(Slot::Input(i));
            } else if let Driver::Gate(g) = net.driver(s) {
                stack.extend(net.gates()[g].inputs.iter().rev().copied());
            }
        }
    }
    // Latches/inputs whose outputs feed nothing are never *visited*; append
    // them in declaration order so the cover is complete.
    for (l, latch) in net.latches().iter().enumerate() {
        if !seen[latch.output.index()] {
            order.push(Slot::Latch(l));
        }
    }
    for (i, &inp) in net.inputs().iter().enumerate() {
        if !seen[inp.index()] {
            order.push(Slot::Input(i));
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfvr_netlist::generators;

    fn check_complete(net: &Netlist, slots: &[Slot]) {
        let latches = slots.iter().filter(|s| matches!(s, Slot::Latch(_))).count();
        let inputs = slots.iter().filter(|s| matches!(s, Slot::Input(_))).count();
        assert_eq!(latches, net.latches().len());
        assert_eq!(inputs, net.inputs().len());
        // No duplicates.
        let mut seen = std::collections::HashSet::new();
        for s in slots {
            assert!(seen.insert(format!("{s:?}")), "duplicate slot {s:?}");
        }
    }

    #[test]
    fn all_heuristics_produce_complete_orders() {
        let nets = [
            generators::counter(5),
            generators::paired_registers(3),
            generators::queue_controller(2),
        ];
        for net in &nets {
            for h in [
                OrderHeuristic::DfsFanin,
                OrderHeuristic::Declaration,
                OrderHeuristic::Reversed,
                OrderHeuristic::Random(42),
            ] {
                check_complete(net, &h.slots(net));
            }
        }
    }

    #[test]
    fn random_orders_differ_by_seed() {
        let net = generators::counter(8);
        let a = OrderHeuristic::Random(1).slots(&net);
        let b = OrderHeuristic::Random(2).slots(&net);
        assert_ne!(a, b);
        // Same seed is deterministic.
        assert_eq!(a, OrderHeuristic::Random(1).slots(&net));
    }

    #[test]
    fn reversed_is_reverse_of_declaration() {
        let net = generators::johnson(4);
        let mut d = OrderHeuristic::Declaration.slots(&net);
        d.reverse();
        assert_eq!(d, OrderHeuristic::Reversed.slots(&net));
    }

    #[test]
    fn labels() {
        assert_eq!(OrderHeuristic::DfsFanin.label(), "S1");
        assert_eq!(OrderHeuristic::Random(7).label(), "O7");
    }
}
