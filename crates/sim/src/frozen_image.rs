//! The frozen-function parallel image step.
//!
//! [`simulate_image_frozen`] computes the same image as
//! [`crate::simulate_image_with`] through a different execution plan
//! built on the `bfvr-bdd` frozen-function kernel:
//!
//! 1. **freeze** — export the transition-function vector and the current
//!    set's components once into one packed, immutable, complement-free
//!    [`FrozenSet`] (read-only on the manager);
//! 2. **compose** — run one coupled-DFS compose task per latch
//!    component over the shared snapshot. Components are independent
//!    (the paper's §2.3 image is embarrassingly parallel per component),
//!    so the tasks fan out across a small work-stealing pool of scoped
//!    threads pulling component indices from an atomic counter;
//! 3. **intern** — canonicalize every task result back into the shared
//!    manager in component order through one batched hash-consing pass.
//!
//! Because each task is a pure function of the snapshot and the
//! substitution map, and re-interning lands in a canonicalizing unique
//! table, the result is **bit-identical** to the sequential
//! `vector_compose` path for every thread count — the differential and
//! determinism tests below pin that down. Resource limits (node budget,
//! deadline) are enforced at the re-intern boundary: frozen tasks
//! themselves never touch the manager.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use bfvr_bdd::{Bdd, BddManager, FrozenSet, FrozenTask, FrozenWorkspace};
use bfvr_bfv::reparam::Schedule;
use bfvr_bfv::{Bfv, BfvError};

use crate::encode::EncodedFsm;
use crate::simulate::{finish_image, ImageScratch};

/// Wall-clock breakdown of one frozen image call, for the `freeze` /
/// `compose` / `intern` telemetry phase counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct FrozenPhases {
    /// Exporting the snapshot from the manager.
    pub freeze: Duration,
    /// Running the per-component coupled-DFS compose tasks (wall time of
    /// the whole fan-out, not the sum over tasks).
    pub compose: Duration,
    /// Batched re-intern of the task results into the manager.
    pub intern: Duration,
}

/// Resolves a `--jobs` request to a worker count: `0` means "ask the
/// OS" ([`std::thread::available_parallelism`], 1 when unknown), any
/// other value is taken as-is.
#[must_use]
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        jobs
    }
}

/// Computes the canonical vector of the image like
/// [`crate::simulate_image_with`], through the frozen-function parallel
/// plan (see the module docs). Returns the image, the per-phase timing
/// breakdown, and the effective worker count (`resolve_jobs(jobs)`
/// clamped to the component count).
///
/// # Errors
///
/// Fails on BDD resource-limit exhaustion — detected during the
/// re-intern pass, where the manager's budgets apply.
pub fn simulate_image_frozen(
    m: &mut BddManager,
    fsm: &EncodedFsm,
    reached: &Bfv,
    schedule: Schedule,
    jobs: usize,
    scratch: &mut ImageScratch,
) -> Result<(Bfv, FrozenPhases, usize), BfvError> {
    let n = fsm.num_latches();
    let space = fsm.space();
    let mut phases = FrozenPhases::default();

    // Phase 1: one snapshot of everything the tasks read — next-state
    // functions first, then the reached components (substitution bodies).
    let t = Instant::now();
    let mut roots: Vec<Bdd> = fsm.next_fns_in_component_order();
    for c in 0..n {
        roots.push(reached.component(c));
    }
    let frozen = m.freeze(&roots);
    // Frozen node labels are *levels*, so the substitution map is keyed
    // by each variable's current level, not its semantic index (they
    // differ once a dynamic reorder has run).
    let mut subst: Vec<Option<u32>> = vec![None; m.num_vars() as usize];
    for (c, &var) in space.vars().iter().enumerate() {
        subst[m.var_to_level(var) as usize] = Some(frozen.root(n + c));
    }
    phases.freeze = t.elapsed();

    // Phase 2: fan the per-component compose tasks across the pool.
    // Workers adopt the scratch-held workspaces from the previous
    // iteration, so a fixed-point loop allocates task buffers once.
    let effective = resolve_jobs(jobs).clamp(1, n.max(1));
    let t = Instant::now();
    let groups = compose_all(&frozen, &subst, n, effective, &mut scratch.frozen_ws);
    phases.compose = t.elapsed();

    // Phase 3: one batched canonicalization pass per worker arena — this
    // is where node limits and deadlines apply. Canonicalization makes
    // the assembly order irrelevant to the final vector, so the batches
    // land in worker order and the components re-sort afterwards.
    let t = Instant::now();
    let mut pairs: Vec<(usize, Bdd)> = Vec::with_capacity(n);
    for (task, items) in &groups {
        if items.is_empty() {
            continue;
        }
        let roots: Vec<u32> = items.iter().map(|&(_, r)| r).collect();
        let back = task.reintern(m, &roots)?;
        pairs.extend(items.iter().map(|&(c, _)| c).zip(back));
    }
    pairs.sort_by_key(|&(c, _)| c);
    let composed: Vec<Bdd> = pairs.into_iter().map(|(_, b)| b).collect();
    phases.intern = t.elapsed();
    scratch
        .frozen_ws
        .extend(groups.into_iter().map(|(t, _)| t.finish()));

    scratch.prepare_for(fsm, m.num_vars() as usize);
    let img = finish_image(m, fsm, composed, schedule, scratch)?;
    Ok((img, phases, effective))
}

/// Fans the per-component compose calls across `workers` scoped threads
/// stealing component indices from an atomic counter (the single-worker
/// case runs inline, no threads spawned). Each worker owns **one**
/// [`FrozenTask`] for all the components it steals: the substitution map
/// is the same for every component, so the task's compose memo and ITE
/// cache carry shared subexpressions from one component to the next —
/// the per-worker analogue of `vector_compose` sharing the manager's
/// operation caches. Returns one `(task, [(component, local root)])`
/// group per worker that did any work.
fn compose_all<'a>(
    frozen: &'a FrozenSet,
    subst: &[Option<u32>],
    n: usize,
    workers: usize,
    pool: &mut Vec<FrozenWorkspace>,
) -> Vec<(FrozenTask<'a>, Vec<(usize, u32)>)> {
    if workers <= 1 {
        let mut task = FrozenTask::reuse(frozen, pool.pop().unwrap_or_default());
        let items: Vec<(usize, u32)> = (0..n)
            .map(|c| (c, task.compose(frozen.root(c), subst)))
            .collect();
        return vec![(task, items)];
    }
    let adopted: Vec<FrozenWorkspace> = (0..workers)
        .map(|_| pool.pop().unwrap_or_default())
        .collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let handles: Vec<_> = adopted
            .into_iter()
            .map(|ws| {
                let next = &next;
                s.spawn(move || {
                    let mut task = FrozenTask::reuse(frozen, ws);
                    let mut mine = Vec::new();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= n {
                            break;
                        }
                        mine.push((c, task.compose(frozen.root(c), subst)));
                    }
                    (task, mine)
                })
            })
            .collect();
        let mut all = Vec::with_capacity(workers);
        for h in handles {
            match h.join() {
                // Idle workers still return: their workspace goes back
                // to the pool with the rest.
                Ok(pair) => all.push(pair),
                // A worker panic is a kernel bug; surface it verbatim.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        all
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::OrderHeuristic;
    use crate::simulate::simulate_image_with;
    use bfvr_bfv::StateSet;
    use bfvr_netlist::generators;

    /// Every generator family: frozen image ≡ sequential image at every
    /// step of a short traversal (graph-equal components after
    /// re-intern, which with a hash-consing manager is `==`).
    #[test]
    fn frozen_image_matches_sequential_on_all_families() {
        for (name, net) in generators::standard_suite() {
            let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
            let space = fsm.space();
            let init = StateSet::singleton(&mut m, &space, &fsm.initial_state()).unwrap();
            let mut scratch = ImageScratch::default();
            let mut cur = init.as_bfv().unwrap().clone();
            for step in 0..3 {
                let want =
                    simulate_image_with(&mut m, &fsm, &cur, Schedule::DynamicSupport).unwrap();
                let (got, phases, jobs) = simulate_image_frozen(
                    &mut m,
                    &fsm,
                    &cur,
                    Schedule::DynamicSupport,
                    2,
                    &mut scratch,
                )
                .unwrap();
                assert_eq!(
                    got.components(),
                    want.components(),
                    "{name} diverged at step {step}"
                );
                assert!((1..=2).contains(&jobs), "{name}: effective jobs {jobs}");
                assert!(phases.freeze + phases.compose + phases.intern > Duration::ZERO);
                cur = want;
            }
        }
    }

    /// The thread count must not be observable in the result: 1 worker
    /// and many workers produce bit-identical components.
    #[test]
    fn frozen_image_is_deterministic_across_thread_counts() {
        let net = generators::lfsr(8);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let space = fsm.space();
        let init = StateSet::singleton(&mut m, &space, &fsm.initial_state()).unwrap();
        let mut cur = init.as_bfv().unwrap().clone();
        // Walk a few steps in so the set has real structure.
        for _ in 0..3 {
            cur = simulate_image_with(&mut m, &fsm, &cur, Schedule::DynamicSupport).unwrap();
        }
        let mut baseline = None;
        for jobs in [1usize, 2, 4, 8] {
            let mut scratch = ImageScratch::default();
            let (img, _, _) = simulate_image_frozen(
                &mut m,
                &fsm,
                &cur,
                Schedule::DynamicSupport,
                jobs,
                &mut scratch,
            )
            .unwrap();
            let components = img.components().to_vec();
            match &baseline {
                None => baseline = Some(components),
                Some(b) => assert_eq!(&components, b, "jobs={jobs} diverged"),
            }
        }
    }

    /// Seeded random state sets (not just traversal-reachable ones)
    /// agree between the two paths — the sim-layer half of the
    /// differential fuzz (the kernel half lives in `bfvr-bdd`).
    #[test]
    fn frozen_image_fuzz_random_state_sets() {
        let mut seed = 0x00dd_5eed_u64;
        let mut rng = move || {
            seed ^= seed >> 12;
            seed ^= seed << 25;
            seed ^= seed >> 27;
            seed.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for (name, net) in [
            ("johnson6", generators::johnson(6)),
            ("queue3", generators::queue_controller(3)),
            ("gray5", generators::gray(5)),
        ] {
            let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
            let space = fsm.space();
            let mut scratch = ImageScratch::default();
            for round in 0..5 {
                // A random non-empty set of up to 4 concrete states.
                let mut set: Option<StateSet> = None;
                for _ in 0..1 + (rng() % 4) {
                    let bits: Vec<bool> = (0..fsm.num_latches()).map(|_| rng() & 1 == 1).collect();
                    let s = StateSet::singleton(&mut m, &space, &bits).unwrap();
                    set = Some(match set {
                        None => s,
                        Some(acc) => acc.union(&mut m, &space, &s).unwrap(),
                    });
                }
                let bfv = match set {
                    Some(StateSet::NonEmpty(v)) => v,
                    _ => continue,
                };
                let want =
                    simulate_image_with(&mut m, &fsm, &bfv, Schedule::DynamicSupport).unwrap();
                let (got, _, _) = simulate_image_frozen(
                    &mut m,
                    &fsm,
                    &bfv,
                    Schedule::DynamicSupport,
                    3,
                    &mut scratch,
                )
                .unwrap();
                assert_eq!(
                    got.components(),
                    want.components(),
                    "{name} diverged in round {round}"
                );
            }
        }
    }
}
