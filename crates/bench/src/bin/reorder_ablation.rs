//! Ablation for the paper's future-work item: greedy *component
//! reordering* of the canonical functional vector (`bfv::reorder`).
//! For each suite circuit's reached set, reports the shared size before
//! and after sifting and the number of accepted swaps.
//!
//! ```sh
//! cargo run --release -p bfvr-bench --bin reorder_ablation
//! ```

use bfvr_bfv::reorder::sift_components;
use bfvr_bfv::StateSet;
use bfvr_netlist::generators;
use bfvr_reach::{reach_bfv, Outcome, ReachOptions};
use bfvr_sim::{EncodedFsm, OrderHeuristic};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Component-reordering ablation (paper future work)");
    println!();
    println!("| circuit    | order | nodes before | nodes after | swaps | gain |");
    println!("|------------|-------|--------------|-------------|-------|------|");
    for (name, net) in generators::standard_suite() {
        if matches!(name.as_str(), "gray8" | "cnt12" | "lfsr10" | "shift16") {
            continue; // dense sets have no dependency structure to exploit
        }
        // The hostile declaration order leaves the most to recover.
        for order in [OrderHeuristic::Declaration, OrderHeuristic::Reversed] {
            let (mut m, fsm) = EncodedFsm::encode(&net, order)?;
            let r = reach_bfv(&mut m, &fsm, &ReachOptions::default());
            assert_eq!(r.outcome, Outcome::FixedPoint, "{name}");
            let space = fsm.space();
            let set = StateSet::from_characteristic(
                &mut m,
                &space,
                r.reached_chi.expect("completed").bdd(),
            )?;
            let f = set.as_bfv().expect("non-empty");
            let res = sift_components(&mut m, &space, f)?;
            println!(
                "| {:10} | {:5} | {:>12} | {:>11} | {:>5} | {:>3.0}% |",
                name,
                order.label(),
                res.before,
                res.after,
                res.swaps_accepted,
                100.0 * (res.before - res.after) as f64 / res.before.max(1) as f64,
            );
        }
    }
    println!();
    println!("Sifting recovers dependency structure the initial component order hides;");
    println!("0% rows are already optimally ordered (dense or symmetric sets).");
    Ok(())
}
