//! Ablation for the paper's future-work item: greedy *component
//! reordering* of the canonical functional vector (`bfv::reorder`).
//! For each suite circuit's reached set, reports the shared size before
//! and after sifting and the number of accepted swaps.
//!
//! The reached set is computed by driving [`BfvBackend`] through the
//! [`SetRepr`] trait directly — the same loop shape the engines use —
//! so the final canonical vector is sifted *natively*, without the old
//! χ → vector round-trip the pre-trait version needed to recover it.
//!
//! ```sh
//! cargo run --release -p bfvr-bench --bin reorder_ablation
//! ```

use bfvr_bfv::reorder::sift_components;
use bfvr_bfv::Bfv;
use bfvr_netlist::generators;
use bfvr_reach::backends::BfvBackend;
use bfvr_reach::SetRepr;
use bfvr_sim::{EncodedFsm, OrderHeuristic};

/// Runs the BFV lane to its fixed point through the trait and returns
/// the final canonical reached vector.
fn reached_vector(
    m: &mut bfvr_bdd::BddManager,
    fsm: &EncodedFsm,
) -> Result<Bfv, bfvr_bfv::BfvError> {
    let mut b = BfvBackend::new(fsm, Default::default());
    b.prepare(m)?;
    let mut reached = b.initial(m)?;
    let mut from = reached.clone();
    loop {
        let img = b.image(m, &from)?;
        let next = b.union(m, &reached, &img)?;
        if b.set_eq(m, &next, &reached) {
            return Ok(reached);
        }
        from = img;
        reached = next;
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Component-reordering ablation (paper future work)");
    println!();
    println!("| circuit    | order | nodes before | nodes after | swaps | gain |");
    println!("|------------|-------|--------------|-------------|-------|------|");
    for (name, net) in generators::standard_suite() {
        if matches!(name.as_str(), "gray8" | "cnt12" | "lfsr10" | "shift16") {
            continue; // dense sets have no dependency structure to exploit
        }
        // The hostile declaration order leaves the most to recover.
        for order in [OrderHeuristic::Declaration, OrderHeuristic::Reversed] {
            let (mut m, fsm) = EncodedFsm::encode(&net, order)?;
            let f = reached_vector(&mut m, &fsm)?;
            let space = fsm.space();
            let res = sift_components(&mut m, &space, &f)?;
            println!(
                "| {:10} | {:5} | {:>12} | {:>11} | {:>5} | {:>3.0}% |",
                name,
                order.label(),
                res.before,
                res.after,
                res.swaps_accepted,
                100.0 * (res.before - res.after) as f64 / res.before.max(1) as f64,
            );
        }
    }
    println!();
    println!("Sifting recovers dependency structure the initial component order hides;");
    println!("0% rows are already optimally ordered (dense or symmetric sets).");
    Ok(())
}
