//! Regenerates the comparison between the paper's **Figure 1** flow
//! (Coudert–Berthet–Madre: characteristic functions + conversions) and
//! **Figure 2** flow (pure Boolean functional vectors): per-iteration
//! traversal cost with the representation-conversion time isolated.
//!
//! ```sh
//! cargo run --release -p bfvr-bench --bin fig1_fig2 [circuit]
//! ```

use bfvr_netlist::generators;
use bfvr_reach::{reach_bfv, reach_cbm, ReachOptions, ReachResult};
use bfvr_sim::{EncodedFsm, OrderHeuristic};

fn report(label: &str, r: &ReachResult) {
    println!(
        "{label}: {} in {:.1} ms over {} iterations, {:.1} ms ({:.0}%) in conversions, peak {} nodes",
        r.outcome.label(),
        r.elapsed.as_secs_f64() * 1e3,
        r.iterations,
        r.conversion_time.as_secs_f64() * 1e3,
        100.0 * r.conversion_time.as_secs_f64() / r.elapsed.as_secs_f64().max(1e-9),
        r.peak_nodes,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "queue4".to_string());
    let suite = generators::standard_suite();
    let net = suite
        .iter()
        .find(|(name, _)| *name == which)
        .map(|(_, n)| n.clone())
        .ok_or_else(|| format!("unknown circuit `{which}`"))?;
    println!("circuit {which}: {}", net.stats());
    println!();

    let opts = ReachOptions {
        record_iterations: true,
        ..Default::default()
    };

    let (mut m1, fsm1) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin)?;
    let fig1 = reach_cbm(&mut m1, &fsm1, &opts);
    report("Figure 1 flow (CBM, χ + conversions)   ", &fig1);

    let (mut m2, fsm2) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin)?;
    let fig2 = reach_bfv(&mut m2, &fsm2, &opts);
    report("Figure 2 flow (BFV, conversion-free)   ", &fig2);

    assert_eq!(
        fig1.reached_states, fig2.reached_states,
        "the two flows must compute the same reachable set"
    );
    println!();
    println!("per-iteration trace (Figure 1 flow): states / reached-χ nodes / conv ms");
    for (i, s) in fig1.per_iteration.iter().enumerate() {
        println!(
            "  iter {:3}: {:>10.0} states  {:>7} nodes  {:>7.2} ms conv",
            i + 1,
            s.reached_states,
            s.reached_nodes,
            s.conversion.as_secs_f64() * 1e3
        );
    }
    println!();
    println!("per-iteration trace (Figure 2 flow): reached-BFV shared nodes");
    for (i, s) in fig2.per_iteration.iter().enumerate() {
        println!(
            "  iter {:3}: {:>7} nodes  (no conversions)",
            i + 1,
            s.reached_nodes
        );
    }
    Ok(())
}
