//! Regenerates the §2.7 comparison: the Figure 2 traversal with sets
//! stored as Boolean functional vectors versus McMillan's conjunctive
//! decomposition, isolating the correspondence-conversion overhead and
//! comparing BDD operation counts.
//!
//! ```sh
//! cargo run --release -p bfvr-bench --bin cdec_ablation [--samples N]
//! ```

use bfvr_bench::timing::{median_run, samples_from_args};
use bfvr_netlist::generators;
use bfvr_reach::{reach_bfv, reach_cdec, ReachOptions};
use bfvr_sim::{EncodedFsm, OrderHeuristic};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let samples = samples_from_args(&args)?;
    println!("§2.7 ablation: BFV engine vs conjunctive-decomposition engine");
    println!("(median of {samples} sample(s) per cell after warm-up)");
    println!();
    println!(
        "| circuit    | BFV ms | BFV mk-calls | CDEC ms | CDEC mk-calls | conv ms | same set |"
    );
    println!(
        "|------------|--------|--------------|---------|---------------|---------|----------|"
    );
    for (name, net) in generators::standard_suite() {
        if matches!(name.as_str(), "gray8" | "cnt12" | "lfsr10") {
            continue; // deep fix-points dominate; the shallow suite shows the overhead
        }
        // Each sample re-encodes in a fresh manager so runs are
        // independent; the median-elapsed run is reported.
        let ((a, a_mk), _) = median_run(samples, || {
            let (mut m, fsm) =
                EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).expect("suite encodes");
            let mk0 = m.stats().mk_calls;
            let r = reach_bfv(&mut m, &fsm, &ReachOptions::default());
            let mk = m.stats().mk_calls - mk0;
            let elapsed = r.elapsed;
            ((r, mk), elapsed)
        });
        let ((b, b_mk), _) = median_run(samples, || {
            let (mut m, fsm) =
                EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).expect("suite encodes");
            let mk0 = m.stats().mk_calls;
            let r = reach_cdec(&mut m, &fsm, &ReachOptions::default());
            let mk = m.stats().mk_calls - mk0;
            let elapsed = r.elapsed;
            ((r, mk), elapsed)
        });
        println!(
            "| {:10} | {:>6.1} | {:>12} | {:>7.1} | {:>13} | {:>7.1} | {:>8} |",
            name,
            a.elapsed.as_secs_f64() * 1e3,
            a_mk,
            b.elapsed.as_secs_f64() * 1e3,
            b_mk,
            b.conversion_time.as_secs_f64() * 1e3,
            if a.reached_states == b.reached_states {
                "yes"
            } else {
                "NO"
            },
        );
        assert_eq!(
            a.reached_states, b.reached_states,
            "{name}: engines disagree"
        );
    }
    println!();
    println!("The constraint view performs the same per-component work (paper §2.7:");
    println!("\"in essence performing the same operations\"); the conv column is the");
    println!("price of moving between the two views each iteration.");
    Ok(())
}
