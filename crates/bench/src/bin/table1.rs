//! Regenerates the paper's **Table 1**: the example set
//! `S = {000,001,010,011,100,101}` as a characteristic function and as a
//! canonical Boolean functional vector, row by row.

use std::time::Instant;

use bfvr_bdd::{Bdd, BddManager, Var};
use bfvr_bench::timing::samples_from_args;
use bfvr_bfv::{Bfv, Space, StateSet};

/// Builds the paper's example set in a fresh manager (the timed region).
fn build() -> (BddManager, Space, Bdd, Bfv) {
    let mut m = BddManager::new(3);
    let space = Space::contiguous(3);
    let points: Vec<Vec<bool>> = (0u8..6)
        .map(|k| (0..3).map(|i| (k >> (2 - i)) & 1 == 1).collect())
        .collect();
    let s = StateSet::from_points(&mut m, &space, &points).expect("example set builds");
    let chi = s.to_characteristic(&mut m, &space).expect("χ builds");
    let f = s.as_bfv().expect("non-empty").clone();
    (m, space, chi, f)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let samples = match samples_from_args(&args) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let ((mut m, space, chi, f), build_time) = bfvr_bench::timing::median_run(samples, || {
        let t = Instant::now();
        let built = build();
        (built, t.elapsed())
    });

    println!("Table 1: representing S = {{000,...,101}} (paper §2)");
    println!();
    println!("| v1 v2 v3 | χ_S | F(v) |");
    println!("|----------|-----|------|");
    for v in 0u8..8 {
        let asg: Vec<bool> = (0..3).map(|i| (v >> (2 - i)) & 1 == 1).collect();
        let in_set = m.eval(chi, &asg);
        let img = f.eval(&m, &space, &asg).expect("3-bit point");
        let img_s: String = img.iter().map(|&b| if b { '1' } else { '0' }).collect();
        let asg_s: String = asg
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .flat_map(|c| [c, ' '])
            .collect();
        println!("| {asg_s}| {}   | {img_s}  |", u8::from(in_set));
    }
    println!();
    println!(
        "χ_S  = ¬(v1 ∧ v2)               ({} BDD nodes)",
        m.size(chi)
    );
    println!(
        "F    = (v1, ¬v1∧v2, v3)          ({} shared BDD nodes)",
        f.shared_size(&m)
    );
    // The canonical components, verified against the paper's closed forms.
    let v1 = m.var(Var(0));
    let v2 = m.var(Var(1));
    let v3 = m.var(Var(2));
    let nv1 = m.not(v1);
    let f2 = m.and(nv1, v2).expect("unbounded");
    assert_eq!(f.components(), &[v1, f2, v3], "Table 1 vector mismatch");
    println!("component check: F matches the paper's (v1, v̄1·v2, v3) exactly");
    println!(
        "manager: {} nodes allocated, peak {}, build {:.3} ms (median of {samples} after warm-up)",
        m.allocated(),
        m.peak_nodes(),
        build_time.as_secs_f64() * 1e3
    );
}
