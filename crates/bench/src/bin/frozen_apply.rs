//! Frozen-apply image benchmark: sequential `vector_compose` image vs
//! the frozen-function backend (`simulate_image_frozen`), measured with
//! the drift-proof interleaved-pair protocol of `BENCH_perf_kernels`.
//!
//! Each benchmark pair runs one **full sequential traversal** and one
//! **full frozen traversal** back-to-back on a fresh manager each, with
//! the driver's loop shape (image, union, per-iteration adaptive GC),
//! timing *only the image calls*; the per-pair statistic is the ratio of
//! the two traversals' summed image wall-clock. Measuring inside a real
//! traversal (rather than replaying one set) keeps every systemic effect
//! in frame — cache warmth carried between iterations, GC flushes past
//! the defer floor, and the allocation pressure each image path puts on
//! the manager. Every pair also asserts the two traversals reach the
//! same states in the same number of iterations — the benchmark doubles
//! as a differential check on real circuits.
//!
//! ```text
//! cargo run --release -p bfvr-bench --bin frozen_apply -- [--jobs N] [--pairs P]
//! ```

use std::time::{Duration, Instant};

use bfvr_bfv::reparam::Schedule;
use bfvr_bfv::StateSet;
use bfvr_netlist::{generators, Netlist};
use bfvr_sim::{
    simulate_image_frozen, simulate_image_scratch, EncodedFsm, ImageScratch, OrderHeuristic,
};

const SCHEDULE: Schedule = Schedule::DynamicSupport;

/// Benchmark families with the static order each runs under (identical
/// for both sides of every pair). The datapath families use the paper's
/// S2 declaration order — latches above inputs, the layout that keeps
/// their wide decode cones pure-input sub-DAGs; the rest use the S1
/// DFS fan-in order of the Table 2 runs.
fn families() -> Vec<(&'static str, Netlist, OrderHeuristic)> {
    const S1: OrderHeuristic = OrderHeuristic::DfsFanin;
    const S2: OrderHeuristic = OrderHeuristic::Declaration;
    vec![
        ("load16", generators::loadable_register(16), S2),
        ("mask14", generators::masked_accumulator(14), S2),
        ("queue4", generators::queue_controller(4), S1),
        ("johnson12", generators::johnson(12), S1),
        ("lfsr10", generators::lfsr(10), S1),
        ("gray8", generators::gray(8), S1),
        ("counter8", generators::counter(8), S1),
        ("rot12", generators::rotator(12), S1),
    ]
}

/// One full BFV traversal to the fixed point, timing only the image
/// calls. `jobs: None` runs the sequential path, `Some(n)` the frozen
/// backend. Returns (summed image time, iterations, reached states).
fn traverse(
    net: &Netlist,
    order: OrderHeuristic,
    jobs: Option<usize>,
) -> Result<(Duration, usize, u128), Box<dyn std::error::Error>> {
    let (mut m, fsm) = EncodedFsm::encode(net, order)?;
    let space = fsm.space();
    let mut reached = StateSet::singleton(&mut m, &space, &fsm.initial_state())?;
    let mut scratch = ImageScratch::default();
    let mut image_time = Duration::ZERO;
    let mut iterations = 0usize;
    for _ in 0..4096 {
        let Some(bfv) = reached.as_bfv().cloned() else {
            break;
        };
        let t = Instant::now();
        let img = match jobs {
            None => simulate_image_scratch(&mut m, &fsm, &bfv, SCHEDULE, &mut scratch)?,
            Some(j) => simulate_image_frozen(&mut m, &fsm, &bfv, SCHEDULE, j, &mut scratch)?.0,
        };
        image_time += t.elapsed();
        let next = reached.union(&mut m, &space, &StateSet::NonEmpty(img))?;
        iterations += 1;
        if next == reached {
            break;
        }
        reached = next;
        // The driver's per-iteration adaptive collection, with the live
        // loop state as roots.
        let mut roots: Vec<bfvr_bdd::Bdd> = fsm.next_fns_in_component_order();
        if let Some(b) = reached.as_bfv() {
            roots.extend_from_slice(b.components());
        }
        m.maybe_collect_garbage(&roots);
    }
    let count = reached.len(&mut m, &space)?;
    Ok((image_time, iterations, count))
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

fn flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// `--probe`: per-family kernel-vs-kernel split. One traversal advances
/// on the sequential path; at every iteration both compose kernels run
/// on the same inputs and only the compose work is timed (map setup +
/// `vector_compose` loop vs freeze + frozen compose + re-intern). The
/// shared reparameterization tail is excluded on both sides. With
/// `--cold` the manager's computed caches are flushed (a collection
/// over the live roots) before each timed side, isolating the kernels
/// from cross-iteration cache warmth.
fn probe(jobs: usize, cold: bool) -> Result<(), Box<dyn std::error::Error>> {
    use bfvr_sim::simulate_image_with;
    println!(
        "{:10} {:>6} {:>14} {:>14} {:>8}",
        "family", "iters", "seq compose us", "frozen sum us", "ratio"
    );
    for (name, net, order) in families() {
        let (mut m, fsm) = EncodedFsm::encode(&net, order)?;
        let space = fsm.space();
        let mut reached = StateSet::singleton(&mut m, &space, &fsm.initial_state())?;
        let mut scratch = ImageScratch::default();
        let mut seq_t = Duration::ZERO;
        let mut froz_t = Duration::ZERO;
        let mut split = [Duration::ZERO; 3];
        let mut iters = 0usize;
        for _ in 0..4096 {
            let Some(bfv) = reached.as_bfv().cloned() else {
                break;
            };
            let mut live: Vec<bfvr_bdd::Bdd> = fsm.next_fns_in_component_order();
            live.extend_from_slice(bfv.components());
            // Sequential kernel: substitution map + one vector_compose
            // per latch (the compose slice of simulate_image_scratch).
            if cold {
                m.collect_garbage(&live);
            }
            let t = Instant::now();
            let mut map: Vec<Option<bfvr_bdd::Bdd>> = vec![None; m.num_vars() as usize];
            for (c, &var) in space.vars().iter().enumerate() {
                map[var.0 as usize] = Some(bfv.component(c));
            }
            let mut seq_composed = Vec::with_capacity(fsm.num_latches());
            for next_fn in fsm.next_fns_in_component_order() {
                seq_composed.push(m.vector_compose(next_fn, &map)?);
            }
            seq_t += t.elapsed();
            // Frozen kernel on identical inputs: its phase counters
            // cover exactly the kernel slice (freeze + compose +
            // intern), excluding the shared reparameterization tail.
            if cold {
                m.collect_garbage(&live);
            }
            let (_, ph, _) =
                simulate_image_frozen(&mut m, &fsm, &bfv, SCHEDULE, jobs, &mut scratch)?;
            froz_t += ph.freeze + ph.compose + ph.intern;
            split[0] += ph.freeze;
            split[1] += ph.compose;
            split[2] += ph.intern;
            iters += 1;
            // Advance on the canonical sequential path.
            let img = simulate_image_with(&mut m, &fsm, &bfv, SCHEDULE)?;
            let next = reached.union(&mut m, &space, &StateSet::NonEmpty(img))?;
            if next == reached {
                break;
            }
            reached = next;
            let mut roots: Vec<bfvr_bdd::Bdd> = fsm.next_fns_in_component_order();
            if let Some(b) = reached.as_bfv() {
                roots.extend_from_slice(b.components());
            }
            m.maybe_collect_garbage(&roots);
        }
        println!(
            "{:10} {:>6} {:>14.0} {:>14.0} {:>8.3}  fz={:.0} cp={:.0} it={:.0}",
            name,
            iters,
            seq_t.as_secs_f64() * 1e6,
            froz_t.as_secs_f64() * 1e6,
            froz_t.as_secs_f64() / seq_t.as_secs_f64(),
            split[0].as_secs_f64() * 1e6,
            split[1].as_secs_f64() * 1e6,
            split[2].as_secs_f64() * 1e6,
        );
    }
    Ok(())
}

/// `--cold`: interleaved replay pairs in the post-collection state. For
/// each family the traversal runs once; each pair then times the two
/// image paths back-to-back on one of the trailing reached sets, with a
/// cache-flushing collection before each side — the per-iteration state
/// of any traversal whose allocation sits past the GC defer floor.
fn cold_replay(jobs: usize, pairs: usize) -> Result<(), Box<dyn std::error::Error>> {
    use bfvr_sim::simulate_image_with;
    println!(
        "{:10} {:>6} {:>12} {:>12} {:>8}  per-pair frozen/seq (cold)",
        "family", "states", "seq med us", "froz med us", "ratio"
    );
    let mut wins = 0usize;
    for (name, net, order) in families() {
        let (mut m, fsm) = EncodedFsm::encode(&net, order)?;
        let space = fsm.space();
        let mut reached = StateSet::singleton(&mut m, &space, &fsm.initial_state())?;
        let mut sets = Vec::new();
        for _ in 0..4096 {
            let Some(bfv) = reached.as_bfv().cloned() else {
                break;
            };
            sets.push(bfv.clone());
            let img = simulate_image_with(&mut m, &fsm, &bfv, SCHEDULE)?;
            let next = reached.union(&mut m, &space, &StateSet::NonEmpty(img))?;
            if next == reached {
                break;
            }
            reached = next;
        }
        let count = reached.len(&mut m, &space)?;
        let tail: Vec<_> = sets.iter().rev().take(pairs).rev().cloned().collect();
        if tail.is_empty() {
            continue;
        }
        let mut roots: Vec<bfvr_bdd::Bdd> = fsm.next_fns_in_component_order();
        for s in &tail {
            roots.extend_from_slice(s.components());
        }
        let mut scratch = ImageScratch::default();
        let mut ratios = Vec::new();
        let mut seq_us = Vec::new();
        let mut froz_us = Vec::new();
        let mut phase_us = [Vec::new(), Vec::new(), Vec::new()];
        for i in 0..pairs {
            let set = &tail[i % tail.len()];
            m.collect_garbage(&roots);
            let t = Instant::now();
            let seq = simulate_image_with(&mut m, &fsm, set, SCHEDULE)?;
            let ts = t.elapsed();
            m.collect_garbage(&roots);
            let t = Instant::now();
            let (froz, ph, _) =
                simulate_image_frozen(&mut m, &fsm, set, SCHEDULE, jobs, &mut scratch)?;
            let tf = t.elapsed();
            assert_eq!(seq, froz, "{name}: pair {i} images diverged");
            ratios.push(tf.as_secs_f64() / ts.as_secs_f64());
            seq_us.push(ts.as_secs_f64() * 1e6);
            froz_us.push(tf.as_secs_f64() * 1e6);
            phase_us[0].push(ph.freeze.as_secs_f64() * 1e6);
            phase_us[1].push(ph.compose.as_secs_f64() * 1e6);
            phase_us[2].push(ph.intern.as_secs_f64() * 1e6);
        }
        let [fz, cp, it] = phase_us.map(median);
        let med = median(ratios.clone());
        if med < 1.0 {
            wins += 1;
        }
        println!(
            "{:10} {:>6} {:>12.0} {:>12.0} {:>8.3}  fz={fz:.0} cp={cp:.0} it={it:.0}  {:?}",
            name,
            count,
            median(seq_us),
            median(froz_us),
            med,
            ratios
                .iter()
                .map(|r| (r * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>()
        );
    }
    println!("families where frozen wins cold (median ratio < 1): {wins}");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    // Mirror the reach layer: a `--jobs` request is capped at the
    // machine's core count — extra workers on an oversubscribed box
    // each repeat the O(|snapshot|) support prepass for no return.
    let requested = flag(&args, "--jobs", 4);
    let jobs = bfvr_sim::resolve_jobs(requested).min(bfvr_sim::resolve_jobs(0));
    if jobs != requested {
        println!("jobs: requested {requested}, running {jobs} (capped at cores)");
    }
    let pairs = flag(&args, "--pairs", 7);
    if args.iter().any(|a| a == "--probe") {
        return probe(jobs, args.iter().any(|a| a == "--cold"));
    }
    if args.iter().any(|a| a == "--cold") {
        return cold_replay(jobs, flag(&args, "--pairs", 15));
    }
    println!(
        "{:10} {:>6} {:>6} {:>12} {:>12} {:>8}  per-pair frozen/seq image time",
        "family", "iters", "states", "seq med us", "froz med us", "ratio"
    );
    let mut wins = 0usize;
    for (name, net, order) in families() {
        // Warm-up pair, untimed (first-touch page faults, lazy statics).
        let (_, seq_iters, seq_count) = traverse(&net, order, None)?;
        let (_, froz_iters, froz_count) = traverse(&net, order, Some(jobs))?;
        assert_eq!(
            (seq_iters, seq_count),
            (froz_iters, froz_count),
            "{name}: traversals diverged"
        );
        let mut ratios = Vec::with_capacity(pairs);
        let mut seq_us = Vec::with_capacity(pairs);
        let mut froz_us = Vec::with_capacity(pairs);
        for _ in 0..pairs {
            let (ts, _, cs) = traverse(&net, order, None)?;
            let (tf, _, cf) = traverse(&net, order, Some(jobs))?;
            assert_eq!(cs, cf, "{name}: reached counts diverged");
            ratios.push(tf.as_secs_f64() / ts.as_secs_f64());
            seq_us.push(ts.as_secs_f64() * 1e6);
            froz_us.push(tf.as_secs_f64() * 1e6);
        }
        let med = median(ratios.clone());
        if med < 1.0 {
            wins += 1;
        }
        println!(
            "{:10} {:>6} {:>6} {:>12.0} {:>12.0} {:>8.3}  {:?}",
            name,
            seq_iters,
            seq_count,
            median(seq_us),
            median(froz_us),
            med,
            ratios
                .iter()
                .map(|r| (r * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>()
        );
    }
    println!("families where frozen wins (median ratio < 1): {wins}");
    Ok(())
}
