//! Regenerates the paper's §3 ordering claim as a parameter sweep: for
//! `χ = ⋀ᵢ (aᵢ ↔ bᵢ)` the characteristic function needs related variables
//! adjacent (exponential otherwise) while the functional vector is linear
//! under every order. Sweeps the pair count and reports both
//! representations under the friendly and hostile orders, for both the
//! BFV engine and the IWLS95 baseline.
//!
//! ```sh
//! cargo run --release -p bfvr-bench --bin ordering_study
//! ```

use bfvr_netlist::generators;
use bfvr_reach::{reach_bfv, reach_iwls95, ReachOptions};
use bfvr_sim::{EncodedFsm, Slot};

fn orders(p: u32) -> [(&'static str, Vec<Slot>); 2] {
    let interleaved: Vec<Slot> = (0..p as usize)
        .flat_map(|i| [Slot::Latch(i), Slot::Latch(p as usize + i)])
        .chain((0..p as usize).map(Slot::Input))
        .collect();
    let separated: Vec<Slot> = (0..2 * p as usize)
        .map(Slot::Latch)
        .chain((0..p as usize).map(Slot::Input))
        .collect();
    [("paired", interleaved), ("split", separated)]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let limits = ReachOptions {
        time_limit: Some(std::time::Duration::from_secs(20)),
        node_limit: Some(2_000_000),
        ..Default::default()
    };
    println!("§3 ordering sweep on the twin-register family");
    println!();
    println!("| pairs | order  | BFV time(ms) | BFV peak | IWLS time(ms) | IWLS peak | χ nodes | BFV nodes |");
    println!("|-------|--------|--------------|----------|---------------|-----------|---------|-----------|");
    for p in [4u32, 6, 8, 10, 12, 14] {
        let net = generators::paired_registers(p);
        for (label, slots) in orders(p) {
            let (mut m1, fsm1) = EncodedFsm::encode_with_slots(&net, &slots)?;
            let b = reach_bfv(&mut m1, &fsm1, &limits);
            let (mut m2, fsm2) = EncodedFsm::encode_with_slots(&net, &slots)?;
            let c = reach_iwls95(&mut m2, &fsm2, &limits);
            let chi_nodes = c
                .reached_chi
                .map(|chi| m2.size(chi.bdd()).to_string())
                .unwrap_or_else(|| c.outcome.label().to_string());
            let bfv_nodes = b
                .representation_nodes
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".into());
            println!(
                "| {:5} | {:6} | {:>12.1} | {:>8} | {:>13.1} | {:>9} | {:>7} | {:>9} |",
                p,
                label,
                b.elapsed.as_secs_f64() * 1e3,
                b.peak_nodes,
                c.elapsed.as_secs_f64() * 1e3,
                c.peak_nodes,
                chi_nodes,
                bfv_nodes,
            );
        }
    }
    println!();
    println!("Expected shape (paper §3): the split order blows the χ representation");
    println!("up exponentially while the BFV column stays linear in the pair count.");
    Ok(())
}
