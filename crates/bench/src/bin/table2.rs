//! Regenerates the paper's **Table 2**: reachability analysis across the
//! benchmark suite and fixed variable orders, comparing the
//! characteristic-function baseline (IWLS95 partitioned transition
//! relations — the paper's "VIS-IWLS" column) with the Boolean functional
//! vector engine, reporting run time, peak live BDD nodes and the
//! `T.O.`/`M.O.` outcomes.
//!
//! ```sh
//! cargo run --release -p bfvr-bench --bin table2 \
//!     [--quick] [--all-engines] [--samples N] [--order TOKEN]
//!     [--sift] [--trace-out FILE] [--trace-sample N]
//! ```
//!
//! `--order` restricts the sweep to one fixed order instead of the
//! default S1/S2/D/O row set; it takes the same tokens as
//! `bfvr reach --order` (`s1`, `decl`, `d`, `coi`, `force`,
//! `o:<seed>`), so the structural orders from `bfvr-nlint` can be
//! benchmarked against the paper's columns.
//!
//! `--sift` arms dynamic variable reordering in every cell (same
//! semantics as `bfvr reach --sift`): the fixed orders become starting
//! points the χ engines may escape mid-run, while the BFV column keeps
//! its static order — the representation is tied to it — so the table
//! then contrasts "dynamic χ" against "static BFV" the way the
//! dynamic-reordering literature frames the comparison.
//!
//! Completed cells are re-run `--samples` times (default 3) after an
//! untimed warm-up and report the median; `T.O.`/`M.O.` cells run once —
//! their timing is the budget itself.
//!
//! With `--trace-out FILE`, every cell's warm-up run is traced into one
//! JSONL telemetry stream (one `run` span per circuit × order cell;
//! render with `bfvr report FILE`). The timed sample runs stay untraced,
//! so the table's medians are never polluted by telemetry.
//! `--trace-sample N` records every n-th iteration (default 1): on
//! iteration-heavy cells the per-iteration record costs O(reached-set
//! nodes) to read while the iteration itself can be O(frontier), so a
//! stride is what keeps whole-binary tracing overhead negligible (see
//! `EXPERIMENTS.md` for the measurement).

use bfvr_bench::timing::samples_from_args;
use bfvr_bench::{cell_limits, format_cell, run_cell_sampled_traced, table_orders};
use bfvr_netlist::generators;
use bfvr_obs::{Counters, JsonlSink, SpanKind, Tracer};
use bfvr_reach::telemetry::trace_handle;
use bfvr_reach::EngineKind;
use bfvr_sim::OrderHeuristic;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let all_engines = args.iter().any(|a| a == "--all-engines");
    let samples = match samples_from_args(&args) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let orders: Vec<OrderHeuristic> = match args.iter().position(|a| a == "--order") {
        None => table_orders(),
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some(tok) => match OrderHeuristic::parse_token(tok) {
                Some(o) => vec![o],
                None => {
                    eprintln!("error: unknown order `{tok}`");
                    std::process::exit(2);
                }
            },
            None => {
                eprintln!("error: --order needs a token (s1|decl|d|coi|force|o:<seed>)");
                std::process::exit(2);
            }
        },
    };
    let stride: u64 = match args.iter().position(|a| a == "--trace-sample") {
        None => 1,
        Some(i) => match args.get(i + 1).and_then(|s| s.parse().ok()) {
            Some(n) if n >= 1 => n,
            _ => {
                eprintln!("error: --trace-sample needs a positive integer");
                std::process::exit(2);
            }
        },
    };
    let trace = args
        .iter()
        .position(|a| a == "--trace-out")
        .map(|i| match args.get(i + 1) {
            Some(path) => match std::fs::File::create(path) {
                Ok(f) => {
                    let sink = JsonlSink::new(std::io::BufWriter::new(f));
                    let mut t = Tracer::with_sampling(Box::new(sink), stride);
                    t.meta(&format!("table2{}", if quick { " --quick" } else { "" }));
                    trace_handle(t)
                }
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    std::process::exit(2);
                }
            },
            None => {
                eprintln!("error: --trace-out needs a file");
                std::process::exit(2);
            }
        });
    let (secs, nodes) = if quick { (5, 400_000) } else { (60, 4_000_000) };
    let mut opts = cell_limits(secs, nodes);
    opts.sift = args.iter().any(|a| a == "--sift");
    let engines: Vec<EngineKind> = if all_engines {
        EngineKind::all().to_vec()
    } else {
        vec![EngineKind::Iwls95, EngineKind::Bfv]
    };
    let mut suite = generators::standard_suite();
    let suite: Vec<_> = if quick {
        suite
            .into_iter()
            .filter(|(n, _)| !matches!(n.as_str(), "gray8" | "cnt12"))
            .collect()
    } else {
        // The full run adds larger instances where the two representations
        // part ways, reproducing the paper's asymmetric T.O./M.O. cells.
        suite.extend([
            ("pair16".to_string(), generators::paired_registers(16)),
            ("pair22".to_string(), generators::paired_registers(22)),
            ("queue5".to_string(), generators::queue_controller(5)),
            ("johnson24".to_string(), generators::johnson(24)),
            ("lfsr12".to_string(), generators::lfsr(12)),
            ("gray10".to_string(), generators::gray(10)),
        ]);
        suite
    };

    println!(
        "Table 2: reachability with fixed variable orders (limits: {}s / {} nodes per cell)",
        secs, nodes
    );
    if opts.sift {
        println!("Dynamic sifting armed: χ cells may reorder mid-run; BFV cells stay static.");
    }
    println!("Each engine cell: time(s)  peak(K nodes); T.O. = timeout, M.O. = node limit.");
    println!("Completed cells: median of {samples} sample(s) after warm-up.");
    println!();
    print!("| {:10} | {:5} |", "circuit", "order");
    for e in &engines {
        print!(" {:^17} |", e.label());
    }
    println!(" {:>9} |", "states");
    print!("|{:-<12}|{:-<7}|", "", "");
    for _ in &engines {
        print!("{:-<19}|", "");
    }
    println!("{:-<11}|", "");
    for (name, net) in &suite {
        for &order in &orders {
            print!("| {:10} | {:5} |", name, order.label());
            let cell_span = trace.as_ref().map(|t| {
                t.borrow_mut().open_span(
                    SpanKind::Run,
                    &format!("{name}/{}", order.label()),
                    Counters::new(),
                )
            });
            let mut states: Option<f64> = None;
            for &engine in &engines {
                let r = run_cell_sampled_traced(net, order, engine, &opts, samples, trace.clone());
                print!(" {:>17} |", format_cell(&r));
                if r.outcome == bfvr_reach::Outcome::FixedPoint {
                    if let (Some(prev), Some(cur)) = (states, r.reached_states) {
                        assert_eq!(prev, cur, "{name}/{}: engines disagree", order.label());
                    }
                    states = states.or(r.reached_states);
                }
            }
            if let (Some(t), Some(id)) = (&trace, cell_span) {
                t.borrow_mut().close_span(id, &Counters::new());
            }
            println!(" {:>9} |", states.map_or("-".into(), |s| format!("{s}")));
        }
    }
    if let Some(t) = &trace {
        t.borrow_mut().finish();
    }
    println!();
    println!("(Substitute suite for the paper's ISCAS89 circuits; see DESIGN.md §3.)");
}
