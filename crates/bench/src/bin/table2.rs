//! Regenerates the paper's **Table 2**: reachability analysis across the
//! benchmark suite and fixed variable orders, comparing the
//! characteristic-function baseline (IWLS95 partitioned transition
//! relations — the paper's "VIS-IWLS" column) with the Boolean functional
//! vector engine, reporting run time, peak live BDD nodes and the
//! `T.O.`/`M.O.` outcomes.
//!
//! ```sh
//! cargo run --release -p bfvr-bench --bin table2 [--quick] [--all-engines] [--samples N]
//! ```
//!
//! Completed cells are re-run `--samples` times (default 3) after an
//! untimed warm-up and report the median; `T.O.`/`M.O.` cells run once —
//! their timing is the budget itself.

use bfvr_bench::timing::samples_from_args;
use bfvr_bench::{cell_limits, format_cell, run_cell_sampled, table_orders};
use bfvr_netlist::generators;
use bfvr_reach::EngineKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let all_engines = args.iter().any(|a| a == "--all-engines");
    let samples = match samples_from_args(&args) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let (secs, nodes) = if quick { (5, 400_000) } else { (60, 4_000_000) };
    let opts = cell_limits(secs, nodes);
    let engines: Vec<EngineKind> = if all_engines {
        EngineKind::all().to_vec()
    } else {
        vec![EngineKind::Iwls95, EngineKind::Bfv]
    };
    let mut suite = generators::standard_suite();
    let suite: Vec<_> = if quick {
        suite
            .into_iter()
            .filter(|(n, _)| !matches!(n.as_str(), "gray8" | "cnt12"))
            .collect()
    } else {
        // The full run adds larger instances where the two representations
        // part ways, reproducing the paper's asymmetric T.O./M.O. cells.
        suite.extend([
            ("pair16".to_string(), generators::paired_registers(16)),
            ("pair22".to_string(), generators::paired_registers(22)),
            ("queue5".to_string(), generators::queue_controller(5)),
            ("johnson24".to_string(), generators::johnson(24)),
            ("lfsr12".to_string(), generators::lfsr(12)),
            ("gray10".to_string(), generators::gray(10)),
        ]);
        suite
    };

    println!(
        "Table 2: reachability with fixed variable orders (limits: {}s / {} nodes per cell)",
        secs, nodes
    );
    println!("Each engine cell: time(s)  peak(K nodes); T.O. = timeout, M.O. = node limit.");
    println!("Completed cells: median of {samples} sample(s) after warm-up.");
    println!();
    print!("| {:10} | {:5} |", "circuit", "order");
    for e in &engines {
        print!(" {:^17} |", e.label());
    }
    println!(" {:>9} |", "states");
    print!("|{:-<12}|{:-<7}|", "", "");
    for _ in &engines {
        print!("{:-<19}|", "");
    }
    println!("{:-<11}|", "");
    for (name, net) in &suite {
        for order in table_orders() {
            print!("| {:10} | {:5} |", name, order.label());
            let mut states: Option<f64> = None;
            for &engine in &engines {
                let r = run_cell_sampled(net, order, engine, &opts, samples);
                print!(" {:>17} |", format_cell(&r));
                if r.outcome == bfvr_reach::Outcome::FixedPoint {
                    if let (Some(prev), Some(cur)) = (states, r.reached_states) {
                        assert_eq!(prev, cur, "{name}/{}: engines disagree", order.label());
                    }
                    states = states.or(r.reached_states);
                }
            }
            println!(" {:>9} |", states.map_or("-".into(), |s| format!("{s}")));
        }
    }
    println!();
    println!("(Substitute suite for the paper's ISCAS89 circuits; see DESIGN.md §3.)");
}
