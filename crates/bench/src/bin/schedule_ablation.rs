//! Regenerates the §3 quantification-schedule ablation: the BFV engine's
//! re-parameterization with the paper's dynamic support-based cost
//! heuristic versus a fixed elimination order.
//!
//! ```sh
//! cargo run --release -p bfvr-bench --bin schedule_ablation [--samples N]
//! ```

use bfvr_bench::timing::{median_run, samples_from_args};
use bfvr_bfv::reparam::Schedule;
use bfvr_netlist::generators;
use bfvr_reach::{reach_bfv, ReachOptions};
use bfvr_sim::{EncodedFsm, OrderHeuristic};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let samples = samples_from_args(&args)?;
    println!("§3 ablation: dynamic support-based quantification schedule vs fixed order");
    println!("(median of {samples} sample(s) per cell after warm-up)");
    println!();
    println!("| circuit    | dynamic ms | dyn peak | fixed ms | fixed peak | same set |");
    println!("|------------|------------|----------|----------|------------|----------|");
    for (name, net) in generators::standard_suite() {
        if matches!(name.as_str(), "gray8" | "cnt12") {
            continue;
        }
        let mut results = Vec::new();
        for schedule in [Schedule::DynamicSupport, Schedule::Fixed] {
            let (r, _) = median_run(samples, || {
                let (mut m, fsm) =
                    EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).expect("suite encodes");
                let opts = ReachOptions {
                    schedule,
                    ..Default::default()
                };
                let r = reach_bfv(&mut m, &fsm, &opts);
                let elapsed = r.elapsed;
                (r, elapsed)
            });
            results.push(r);
        }
        let (d, f) = (&results[0], &results[1]);
        println!(
            "| {:10} | {:>10.1} | {:>8} | {:>8.1} | {:>10} | {:>8} |",
            name,
            d.elapsed.as_secs_f64() * 1e3,
            d.peak_nodes,
            f.elapsed.as_secs_f64() * 1e3,
            f.peak_nodes,
            if d.reached_states == f.reached_states {
                "yes"
            } else {
                "NO"
            },
        );
        assert_eq!(
            d.reached_states, f.reached_states,
            "{name}: schedules disagree"
        );
    }
    Ok(())
}
