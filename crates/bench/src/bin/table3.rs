//! Regenerates the paper's **Table 3**: for the reached state sets of the
//! dependency-rich circuits (the stand-ins for s4863), the size of the
//! characteristic-function BDD versus the shared size of the Boolean
//! functional vector, across variable orders.
//!
//! The χ size is obtained by converting the final BFV — exactly how the
//! paper produced its numbers ("the size of the characteristic function
//! BDD was obtained by converting the Boolean functional vector").
//!
//! ```sh
//! cargo run --release -p bfvr-bench --bin table3
//! ```

use bfvr_bench::table_orders;
use bfvr_bfv::StateSet;
use bfvr_netlist::generators;
use bfvr_reach::{reach_bfv, Outcome, ReachOptions};
use bfvr_sim::EncodedFsm;

fn main() {
    let circuits = vec![
        ("pair10", generators::paired_registers(10)),
        ("queue4", generators::queue_controller(4)),
        ("johnson16", generators::johnson(16)),
        ("rot16", generators::rotator(16)),
    ];
    println!("Table 3: BDD size of χ(reached) vs shared BFV size of the reached set");
    println!();
    println!("| circuit    | order | χ nodes | BFV nodes | ratio |");
    println!("|------------|-------|---------|-----------|-------|");
    for (name, net) in &circuits {
        for order in table_orders() {
            let (mut m, fsm) = EncodedFsm::encode(net, order).expect("suite circuits encode");
            let r = reach_bfv(&mut m, &fsm, &ReachOptions::default());
            assert_eq!(r.outcome, Outcome::FixedPoint, "{name} did not complete");
            let chi = r.reached_chi.expect("completed runs produce χ").bdd();
            let chi_nodes = m.size(chi);
            // Rebuild the canonical vector from χ to measure its size (it
            // equals the engine's final representation, by canonicity).
            let space = fsm.space();
            let set = StateSet::from_characteristic(&mut m, &space, chi)
                .expect("conversion fits in memory");
            let bfv_nodes = set.as_bfv().expect("non-empty").shared_size(&m);
            println!(
                "| {:10} | {:5} | {:7} | {:9} | {:5.1} |",
                name,
                order.label(),
                chi_nodes,
                bfv_nodes,
                chi_nodes as f64 / bfv_nodes as f64
            );
        }
    }
    println!();
    println!("The BFV stays compact where χ must encode cross-register dependencies");
    println!("(paper Table 3 showed the same shape for s4863).");
}
