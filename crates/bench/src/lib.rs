//! # bfvr-bench — the paper's evaluation, regenerated
//!
//! Shared plumbing for the table/figure binaries and timing benches.
//! Each artifact of the paper's evaluation section maps to one binary
//! (see `DESIGN.md` §4):
//!
//! | paper artifact | binary |
//! |---|---|
//! | Table 1 (set encodings) | `table1` |
//! | Figures 1 vs 2 (flow comparison) | `fig1_fig2` |
//! | Table 2 (reachability, engines × orders) | `table2` |
//! | Table 3 (χ vs BFV sizes of reached sets) | `table3` |
//! | §3 ordering example | `ordering_study` (plus `examples/ordering_study.rs`) |
//! | §2.7 correspondence cost | `cdec_ablation` |
//! | §3 quantification schedule | `schedule_ablation` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::time::Duration;

use bfvr_netlist::Netlist;
use bfvr_reach::{run, EngineKind, ReachOptions, ReachResult};
use bfvr_sim::{EncodedFsm, OrderHeuristic};

/// The variable orders of the Table 2 reproduction, labeled like the
/// paper's columns.
#[must_use]
pub fn table_orders() -> Vec<OrderHeuristic> {
    vec![
        OrderHeuristic::DfsFanin,
        OrderHeuristic::Declaration,
        OrderHeuristic::Reversed,
        OrderHeuristic::Random(17),
    ]
}

/// Runs one engine on one circuit under one order in a fresh manager.
///
/// # Panics
///
/// Panics if the circuit cannot be encoded (generator circuits always can).
#[must_use]
// The suite only feeds bundled, known-good circuits; an encode failure
// here means the suite definition itself is broken.
#[allow(clippy::expect_used)]
pub fn run_cell(
    net: &Netlist,
    order: OrderHeuristic,
    engine: EngineKind,
    opts: &ReachOptions,
) -> ReachResult {
    let (mut m, fsm) = EncodedFsm::encode(net, order).expect("suite circuits encode");
    run(engine, &mut m, &fsm, opts)
}

/// Runs one cell like [`run_cell`], but warmed up and sampled: one
/// untimed warm-up run decides the outcome, and — when it completed —
/// `samples` further timed runs are taken and the median-elapsed result
/// is returned, so table timings stop wobbling with cold caches.
///
/// Resource-limited cells (`T.O.`/`M.O.`) are returned from the warm-up
/// run directly: their outcome is deterministic and their "timing" is the
/// budget itself, so resampling would only multiply the suite's wall
/// clock by the limit.
///
/// # Panics
///
/// Panics if the circuit cannot be encoded (generator circuits always can).
#[must_use]
pub fn run_cell_sampled(
    net: &Netlist,
    order: OrderHeuristic,
    engine: EngineKind,
    opts: &ReachOptions,
    samples: usize,
) -> ReachResult {
    run_cell_sampled_traced(net, order, engine, opts, samples, None)
}

/// Like [`run_cell_sampled`], but the untimed warm-up run carries the
/// telemetry handle (`table2 --trace-out`): the trace captures one full
/// representative traversal per cell, while the timed sample runs stay
/// untraced so telemetry can never contaminate the reported medians.
///
/// # Panics
///
/// Panics if the circuit cannot be encoded (generator circuits always can).
#[must_use]
pub fn run_cell_sampled_traced(
    net: &Netlist,
    order: OrderHeuristic,
    engine: EngineKind,
    opts: &ReachOptions,
    samples: usize,
    trace: Option<bfvr_reach::TraceHandle>,
) -> ReachResult {
    let warmup = if let Some(trace) = trace {
        let mut traced = opts.clone();
        traced.trace = Some(trace);
        run_cell(net, order, engine, &traced)
    } else {
        run_cell(net, order, engine, opts)
    };
    if warmup.outcome != bfvr_reach::Outcome::FixedPoint || samples <= 1 {
        return warmup;
    }
    let mut runs: Vec<ReachResult> = (0..samples)
        .map(|_| run_cell(net, order, engine, opts))
        .collect();
    runs.sort_by_key(|r| r.elapsed);
    runs.swap_remove(runs.len() / 2)
}

/// Default per-cell limits for table runs (scaled-down analogue of the
/// paper's 10 h / 1 GB budget).
#[must_use]
pub fn cell_limits(seconds: u64, nodes: usize) -> ReachOptions {
    ReachOptions {
        time_limit: Some(Duration::from_secs(seconds)),
        node_limit: Some(nodes),
        ..Default::default()
    }
}

/// Formats a result like a Table 2 cell: `time(s)  peak(K)` or the
/// outcome marker.
#[must_use]
pub fn format_cell(r: &ReachResult) -> String {
    match r.outcome {
        bfvr_reach::Outcome::FixedPoint => format!(
            "{:>8.2} {:>8.1}",
            r.elapsed.as_secs_f64(),
            r.peak_nodes as f64 / 1000.0
        ),
        other => format!("{:>8} {:>8}", other.label(), "-"),
    }
}

/// Markdown-ish row printer used by the table binaries.
pub fn print_row(cols: &[String]) {
    println!("| {} |", cols.join(" | "));
}

/// Minimal wall-clock timing harness for the `benches/` binaries.
///
/// The benches are plain `fn main()` programs (`harness = false`), so
/// they build and run without any external benchmarking dependency —
/// the whole workspace stays compilable offline.
pub mod timing {
    use std::time::{Duration, Instant};

    /// Default sample count for the table/ablation binaries.
    pub const DEFAULT_SAMPLES: usize = 3;

    /// Parses a `--samples N` flag (default [`DEFAULT_SAMPLES`]).
    ///
    /// # Errors
    ///
    /// Rejects a missing, unparsable, or zero `N`.
    pub fn samples_from_args(args: &[String]) -> Result<usize, String> {
        let Some(i) = args.iter().position(|a| a == "--samples") else {
            return Ok(DEFAULT_SAMPLES);
        };
        let n: usize = args
            .get(i + 1)
            .ok_or("--samples needs a count")?
            .parse()
            .map_err(|e| format!("bad --samples: {e}"))?;
        if n == 0 {
            return Err("--samples must be at least 1".into());
        }
        Ok(n)
    }

    /// Runs `f` once untimed (warm-up), then `samples` timed runs, and
    /// returns the run with the median duration (its value and the
    /// duration itself). `f` reports its own duration so callers can
    /// time a sub-region instead of the whole call.
    pub fn median_run<T>(samples: usize, mut f: impl FnMut() -> (T, Duration)) -> (T, Duration) {
        drop(f()); // warm-up: populate caches, fault in pages
        let mut runs: Vec<(T, Duration)> = (0..samples.max(1)).map(|_| f()).collect();
        runs.sort_by_key(|&(_, d)| d);
        let mid = runs.len() / 2;
        runs.swap_remove(mid)
    }

    /// Times `samples` runs of `f` (after one untimed warm-up) and
    /// prints a `min / median / mean` row under `label`.
    pub fn bench(label: &str, samples: usize, mut f: impl FnMut()) {
        f(); // warm-up: populate caches, fault in pages
        let mut times: Vec<Duration> = (0..samples.max(1))
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed()
            })
            .collect();
        times.sort();
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{label:<44} min {:>12?}  median {:>12?}  mean {:>12?}",
            times[0], median, mean
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfvr_netlist::generators;

    #[test]
    fn cell_runner_smoke() {
        let net = generators::rotator(4);
        let r = run_cell(
            &net,
            OrderHeuristic::DfsFanin,
            EngineKind::Bfv,
            &ReachOptions::default(),
        );
        assert_eq!(r.reached_states, Some(4.0));
        assert!(format_cell(&r).contains('.'));
    }

    #[test]
    fn limited_cell_reports_marker() {
        let net = generators::gray(12);
        let r = run_cell(
            &net,
            OrderHeuristic::DfsFanin,
            EngineKind::Bfv,
            &cell_limits(0, usize::MAX),
        );
        assert!(format_cell(&r).contains("T.O."));
    }

    #[test]
    fn sampled_cell_matches_single_run() {
        let net = generators::rotator(4);
        let single = run_cell(
            &net,
            OrderHeuristic::DfsFanin,
            EngineKind::Bfv,
            &ReachOptions::default(),
        );
        let sampled = run_cell_sampled(
            &net,
            OrderHeuristic::DfsFanin,
            EngineKind::Bfv,
            &ReachOptions::default(),
            3,
        );
        assert_eq!(sampled.outcome, single.outcome);
        assert_eq!(sampled.reached_states, single.reached_states);
        assert_eq!(sampled.iterations, single.iterations);
    }

    #[test]
    fn sampled_cell_does_not_resample_exhausted_runs() {
        // A 0-second budget times out; resampling it would multiply the
        // wall clock by the limit, so only the warm-up run happens.
        let net = generators::gray(12);
        let t = std::time::Instant::now();
        let r = run_cell_sampled(
            &net,
            OrderHeuristic::DfsFanin,
            EngineKind::Bfv,
            &cell_limits(0, usize::MAX),
            100,
        );
        assert_eq!(r.outcome, bfvr_reach::Outcome::TimeOut);
        assert!(t.elapsed() < Duration::from_secs(30), "ran only once");
    }

    #[test]
    fn samples_flag_parses_with_default() {
        let none: Vec<String> = vec!["table2".into(), "--quick".into()];
        assert_eq!(
            timing::samples_from_args(&none),
            Ok(timing::DEFAULT_SAMPLES)
        );
        let five: Vec<String> = vec!["--samples".into(), "5".into()];
        assert_eq!(timing::samples_from_args(&five), Ok(5));
        let zero: Vec<String> = vec!["--samples".into(), "0".into()];
        assert!(timing::samples_from_args(&zero).is_err());
        let missing: Vec<String> = vec!["--samples".into()];
        assert!(timing::samples_from_args(&missing).is_err());
    }

    #[test]
    fn median_run_returns_a_sampled_value() {
        let mut calls = 0u32;
        let (value, d) = timing::median_run(3, || {
            calls += 1;
            (calls, Duration::from_millis(u64::from(calls)))
        });
        // One warm-up + three samples; the median sample is returned.
        assert_eq!(calls, 4);
        assert_eq!(value, 3);
        assert_eq!(d, Duration::from_millis(3));
    }

    #[test]
    fn orders_cover_the_papers_spectrum() {
        let labels: Vec<String> = table_orders().iter().map(|o| o.label()).collect();
        assert_eq!(labels, vec!["S1", "S2", "D", "O17"]);
    }
}
