//! Timed benches for the §3 ordering claim: reachability of the
//! twin-register family under the friendly (interleaved) and hostile
//! (split) variable orders, BFV engine vs the χ-based baseline.

use bfvr_bench::timing::bench;
use bfvr_netlist::generators;
use bfvr_reach::{reach_bfv, reach_iwls95, Outcome, ReachOptions};
use bfvr_sim::{EncodedFsm, Slot};

fn slots(p: u32, interleaved: bool) -> Vec<Slot> {
    if interleaved {
        (0..p as usize)
            .flat_map(|i| [Slot::Latch(i), Slot::Latch(p as usize + i)])
            .chain((0..p as usize).map(Slot::Input))
            .collect()
    } else {
        (0..2 * p as usize)
            .map(Slot::Latch)
            .chain((0..p as usize).map(Slot::Input))
            .collect()
    }
}

fn main() {
    for p in [6u32, 8, 10] {
        let net = generators::paired_registers(p);
        for (label, inter) in [("paired", true), ("split", false)] {
            let order = slots(p, inter);
            bench(&format!("ordering/bfv_{label}/{p}"), 5, || {
                let (mut m, fsm) = EncodedFsm::encode_with_slots(&net, &order).unwrap();
                let r = reach_bfv(&mut m, &fsm, &ReachOptions::default());
                assert_eq!(r.outcome, Outcome::FixedPoint);
            });
            bench(&format!("ordering/iwls_{label}/{p}"), 5, || {
                let (mut m, fsm) = EncodedFsm::encode_with_slots(&net, &order).unwrap();
                let r = reach_iwls95(&mut m, &fsm, &ReachOptions::default());
                assert_eq!(r.outcome, Outcome::FixedPoint);
            });
        }
    }
}
