//! Timed benches for the Table 2 engines: full reachability runs per
//! (circuit, engine) on mid-size suite members.

use bfvr_bench::timing::bench;
use bfvr_netlist::generators;
use bfvr_reach::{run, EngineKind, Outcome, ReachOptions};
use bfvr_sim::{EncodedFsm, OrderHeuristic};

fn main() {
    let circuits = vec![
        ("s27", bfvr_netlist::circuits::s27()),
        ("johnson10", generators::johnson(10)),
        ("pair6", generators::paired_registers(6)),
        ("rot10", generators::rotator(10)),
        ("queue2", generators::queue_controller(2)),
        ("mod24x6", generators::counter_modk(6, 24)),
    ];
    for (name, net) in &circuits {
        for engine in [EngineKind::Bfv, EngineKind::Iwls95, EngineKind::Cbm] {
            bench(&format!("reach/{}/{name}", engine.label()), 5, || {
                let (mut m, fsm) = EncodedFsm::encode(net, OrderHeuristic::DfsFanin).unwrap();
                let r = run(engine, &mut m, &fsm, &ReachOptions::default());
                assert_eq!(r.outcome, Outcome::FixedPoint);
            });
        }
    }
}
