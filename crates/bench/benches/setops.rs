//! Timed benches for the core set operations (§2.3–§2.5): union and
//! intersection cost as the component count grows, including the §2.4
//! note that intersection needs quadratically many BDD operations, and
//! the §2.7 conjunctive-decomposition variants.

use bfvr_bdd::{Bdd, BddManager, Var};
use bfvr_bench::timing::bench;
use bfvr_bfv::cdec::CDec;
use bfvr_bfv::convert::from_characteristic;
use bfvr_bfv::{ops, Bfv, Space};

/// Builds a structured canonical set over `n` components: an interval
/// constraint `value(v) ≥ T` (reading `v` as a big-endian integer)
/// conjoined with a few seeded adjacent-bit equalities. Both pieces have
/// linear-size BDDs, so the benchmark scales in the component count
/// rather than in representation blow-up, and the all-ones point keeps
/// every set non-empty.
fn random_set(m: &mut BddManager, space: &Space, n: u32, seed: u64) -> Bfv {
    let mut s = seed | 1;
    // value(v) ≥ T, built lsb-up: geq_i over bits i..n-1.
    let mut geq = Bdd::TRUE; // T's low bits exhausted: always ≥
    for i in (0..n).rev() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let t_bit = s & 1 == 1;
        let v = m.var(Var(i));
        geq = if t_bit {
            m.and(v, geq).unwrap() // need this bit set (or win earlier)
        } else {
            m.or(v, geq).unwrap() // this bit set wins outright
        };
    }
    let mut chi = geq;
    // A few adjacent equalities to create dependencies.
    for k in 0..n / 8 {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let i = (s % u64::from(n - 1)) as u32;
        let _ = k;
        let a = m.var(Var(i));
        let b = m.var(Var(i + 1));
        let eq = m.xnor(a, b).unwrap();
        chi = m.and(chi, eq).unwrap();
    }
    from_characteristic(m, space, chi)
        .unwrap()
        .expect("all-ones is always a member")
}

fn main() {
    for n in [8u32, 16, 32, 64] {
        let mut m = BddManager::new(n);
        let space = Space::contiguous(n);
        let f = random_set(&mut m, &space, n, 0xDEADBEEF);
        let g = random_set(&mut m, &space, n, 0x12345678);
        bench(&format!("setops/union/{n}"), 20, || {
            ops::union(&mut m, &space, &f, &g).unwrap();
        });
        bench(&format!("setops/intersect/{n}"), 20, || {
            ops::intersect(&mut m, &space, &f, &g).unwrap();
        });
        bench(&format!("setops/exists/{n}"), 20, || {
            ops::exists(&mut m, &space, &f, space.var(0)).unwrap();
        });
        let df = CDec::from_bfv(&mut m, &space, &f).unwrap();
        let dg = CDec::from_bfv(&mut m, &space, &g).unwrap();
        bench(&format!("setops/cdec_union/{n}"), 20, || {
            df.union(&mut m, &space, &dg).unwrap();
        });
    }
}
