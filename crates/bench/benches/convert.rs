//! Timed benches for the representation conversions the Figure 2 flow
//! eliminates: χ → canonical BFV (CBM parameterization) and BFV → χ
//! (conjunctive construction), plus the recursive-splitting range used by
//! the Figure 1 flow.

use bfvr_bench::timing::bench;
use bfvr_bfv::convert::{from_characteristic, to_characteristic};
use bfvr_bfv::StateSet;
use bfvr_netlist::generators;
use bfvr_reach::{reach_bfv, ReachOptions};
use bfvr_sim::{EncodedFsm, OrderHeuristic};

fn main() {
    let circuits = vec![
        ("johnson12", generators::johnson(12)),
        ("pair8", generators::paired_registers(8)),
        ("queue3", generators::queue_controller(3)),
        ("rot12", generators::rotator(12)),
    ];
    for (name, net) in &circuits {
        // Use each circuit's real reached set as the workload.
        let (mut m, fsm) = EncodedFsm::encode(net, OrderHeuristic::DfsFanin).unwrap();
        let r = reach_bfv(&mut m, &fsm, &ReachOptions::default());
        let chi_root = r.reached_chi.expect("suite circuits complete");
        let chi = chi_root.bdd();
        let space = fsm.space();
        let set = StateSet::from_characteristic(&mut m, &space, chi).unwrap();
        let bfv = set.as_bfv().expect("non-empty").clone();
        bench(&format!("convert/chi_to_bfv/{name}"), 20, || {
            from_characteristic(&mut m, &space, chi).unwrap();
        });
        bench(&format!("convert/bfv_to_chi/{name}"), 20, || {
            to_characteristic(&mut m, &space, &bfv).unwrap();
        });
    }
}
