//! Criterion benches for the representation conversions the Figure 2 flow
//! eliminates: χ → canonical BFV (CBM parameterization) and BFV → χ
//! (conjunctive construction), plus the recursive-splitting range used by
//! the Figure 1 flow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bfvr_bfv::convert::{from_characteristic, to_characteristic};
use bfvr_bfv::StateSet;
use bfvr_netlist::generators;
use bfvr_reach::{reach_bfv, ReachOptions};
use bfvr_sim::{EncodedFsm, OrderHeuristic};

fn bench_convert(c: &mut Criterion) {
    let circuits = vec![
        ("johnson12", generators::johnson(12)),
        ("pair8", generators::paired_registers(8)),
        ("queue3", generators::queue_controller(3)),
        ("rot12", generators::rotator(12)),
    ];
    let mut group = c.benchmark_group("convert");
    group.sample_size(20);
    for (name, net) in &circuits {
        // Use each circuit's real reached set as the workload.
        let (mut m, fsm) = EncodedFsm::encode(net, OrderHeuristic::DfsFanin).unwrap();
        let r = reach_bfv(&mut m, &fsm, &ReachOptions::default());
        let chi = r.reached_chi.expect("suite circuits complete");
        let space = fsm.space();
        let set = StateSet::from_characteristic(&mut m, &space, chi).unwrap();
        let bfv = set.as_bfv().expect("non-empty").clone();
        group.bench_with_input(BenchmarkId::new("chi_to_bfv", name), name, |b, _| {
            b.iter(|| from_characteristic(&mut m, &space, chi).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("bfv_to_chi", name), name, |b, _| {
            b.iter(|| to_characteristic(&mut m, &space, &bfv).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_convert);
criterion_main!(benches);
