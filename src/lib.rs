//! # bfvr — Boolean functional vectors for symbolic reachability analysis
//!
//! Umbrella crate for the reproduction of *"Set Manipulation with Boolean
//! Functional Vectors for Symbolic Reachability Analysis"* (Goel & Bryant,
//! DATE 2003). It re-exports the workspace crates under short module
//! names; see each crate for the full API:
//!
//! * [`bdd`] — the ROBDD substrate (`bfvr-bdd`),
//! * [`bfv`] — canonical Boolean functional vectors and their set algebra
//!   (`bfvr-bfv`, the paper's contribution),
//! * [`setrepr`] — the pluggable set-representation abstraction the
//!   reachability engines iterate on (`bfvr-setrepr`),
//! * [`netlist`] — ISCAS89/BLIF sequential netlists and circuit generators
//!   (`bfvr-netlist`),
//! * [`sim`] — symbolic simulation and variable-ordering heuristics
//!   (`bfvr-sim`),
//! * [`reach`] — the reachability engines of the paper's Figures 1 and 2
//!   plus the characteristic-function baselines (`bfvr-reach`),
//! * [`audit`] — pass-based semantic analysis of BDD graphs and canonical
//!   BFVs with compiler-style diagnostics (`bfvr-audit`),
//! * [`nlint`] — static netlist analysis: structural/semantic lint passes,
//!   lint-gated simplification, and the support analyses behind the
//!   COI/FORCE variable orders (`bfvr-nlint`),
//! * [`obs`] — structured run telemetry: spans, counters and the JSONL
//!   trace format rendered by `bfvr report` (`bfvr-obs`),
//! * [`serve`] — crash-safe job execution: durable checkpoint files, the
//!   append-only job journal, and the supervised worker pool behind
//!   `bfvr serve` (`bfvr-serve`).
//!
//! The `examples/` directory shows end-to-end flows; `DESIGN.md` maps the
//! paper's every table and figure to a regenerating binary.

pub use bfvr_audit as audit;
pub use bfvr_bdd as bdd;
pub use bfvr_bfv as bfv;
pub use bfvr_netlist as netlist;
pub use bfvr_nlint as nlint;
pub use bfvr_obs as obs;
pub use bfvr_reach as reach;
pub use bfvr_serve as serve;
pub use bfvr_setrepr as setrepr;
pub use bfvr_sim as sim;
