//! `bfvr` — command-line front end for the Boolean-functional-vector
//! reachability toolkit.
//!
//! ```text
//! bfvr gen <family:param>             emit a generated circuit as .bench
//! bfvr stats <file>                   parse and summarize a circuit
//! bfvr convert <file> --to FORMAT     convert between bench and blif
//! bfvr reach <file> [options]         reachability analysis
//! bfvr resume --from <ckpt>           continue from a durable checkpoint
//! bfvr serve --dir <dir>              supervised worker pool over a job dir
//! bfvr submit <file> --dir <dir>      journal a job for bfvr serve
//! bfvr audit <file> [options]         audit engines' intermediate sets
//! bfvr lint <file> [options]          static netlist analysis (bfvr-nlint)
//! bfvr check <file> --bad CUBE        invariant check (+ counterexample)
//! bfvr trace <file> --to CUBE         minimal input trace to a state cube
//! bfvr report <trace.jsonl>           render a --trace-out telemetry trace
//! ```
//!
//! Run `bfvr help` for the full option list.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::cell::{Cell, RefCell};
use std::path::PathBuf;
use std::process::ExitCode;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bfvr::audit::{run_mutations, run_passes, AuditTargets, Report, Severity};
use bfvr::bfv::StateSet;
use bfvr::netlist::{bench, blif, generators, Netlist};
use bfvr::obs::json::{obj, Value};
use bfvr::obs::{Counters, Format, JsonlSink, SpanKind, Tracer};
use bfvr::reach::portfolio::{run_escalating_repr, run_racing, EscalationPolicy, Lane, RaceConfig};
use bfvr::reach::telemetry::trace_handle;
use bfvr::reach::TraceHandle;
use bfvr::reach::{
    check_invariant, find_trace, lane_label, run as run_engine, run_repr, CheckResult, Checkpoint,
    CheckpointHook, EngineKind, Outcome, ReachOptions, ReachResult, ReprKind, SetView,
};
use bfvr::serve::{
    fnv1a64, level_map_of, read_checkpoint, read_meta, replay, signal, write_checkpoint, CkptMeta,
    JobSpec, Journal, ProcessRunner, Supervisor, SupervisorConfig, EXIT_CHECKPOINTED,
};
use bfvr::sim::{EncodedFsm, OrderHeuristic};

const USAGE: &str = "\
bfvr — symbolic reachability with Boolean functional vectors

USAGE:
  bfvr gen <family:param>                 counter:8, modk:4:10, gray:6, lfsr:10,
                                          shift:16, johnson:12, pair:8, queue:4,
                                          rot:12, traffic:4, load:12, mask:10, s27
  bfvr stats <file>
  bfvr convert <file> --to bench|blif|verilog
  bfvr reach <file> [--engine bfv|cbm|mono|iwls95|cdec|all]
                    [--repr chi|bfv|cdec|zdd|zono|native|all]
                                         set representation each engine
                                         iterates on (default: native).
                                         Engine×repr pairs the engine
                                         cannot drive are dropped; zono
                                         lanes over-approximate and print
                                         their count as an upper bound
                    [--order s1|decl|d|coi|force|o:<seed>|all]
                                         static variable order: s1 fan-in
                                         DFS (default), decl declaration
                                         (alias s2), d reversed, coi
                                         cone-of-influence interleaving,
                                         force FORCE placement, o:<seed>
                                         random; all crosses every lane
                                         with s1/decl/coi/force
                    [--time-limit <sec>] [--node-limit <nodes>]
                    [--cache-limit <slots>]  cap each op cache's computed
                                         table at this many slots (rounded
                                         to a power of two; bounds resident
                                         cache memory, trades hit rate)
                    [--sift]             dynamic variable reordering: when
                                         live nodes grow past the trigger
                                         multiple since the last reorder,
                                         pause the traversal and sift each
                                         level to its locally best position
                                         (Rudell). χ lanes only — BFV/CDEC/
                                         ZDD/zono representations are
                                         structurally tied to their order
                                         (see docs/ordering.md); sifting
                                         lanes print as LANE~S
                    [--sift-maxgrowth <f>]  abort one variable's sift when
                                         the table grows past f× its size
                                         at the start of that variable's
                                         pass (default 1.2)
                    [--sift-trigger <f>] live-node growth multiple that
                                         fires a reorder pass (default 2)
                    [--frozen]           run the image step on the frozen-
                                         function parallel backend: freeze
                                         the transition vector + reached set
                                         once per iteration, fan per-component
                                         compose tasks across a worker pool,
                                         re-intern in one batched pass.
                                         Bit-identical results; BFV/CDEC
                                         lanes only (χ lanes ignore it);
                                         frozen lanes print as LANE*F
                    [--race]             run the selected engines (default:
                                         all) concurrently, one manager per
                                         thread; first fixed point wins and
                                         cancels the rest
                    [--jobs <n>]         with --race: cap racing worker
                                         threads (default: one per engine);
                                         with --frozen: frozen image pool
                                         size (default: all cores, clamped
                                         to the component count). Racing
                                         frozen lanes always run their
                                         pools single-threaded
                    [--escalate]         on T.O./M.O., resume from the
                                         checkpoint with raised budgets
                                         (per lane when racing)
                    [--escalate-factor <f>]  budget multiplier per retry
                                         (default 2)
                    [--max-budget <nodes>]   node-budget ceiling for
                                         escalation
                    [--dump-reached]     print the reached set as cubes
                    [--trace-out <file>] write a structured JSONL telemetry
                                         trace (spans, per-iteration counter
                                         snapshots; render with bfvr report)
                    [--trace-sample <n>] record every n-th iteration in the
                                         trace (default 1 = every iteration;
                                         the first is always recorded)
                    [--checkpoint-out <file>]  write a durable, resumable
                                         checkpoint (atomic rename) when the
                                         run is interrupted by SIGINT/SIGTERM
                                         or trips a resource limit — and
                                         periodically while running; exit
                                         code 75 means \"interrupted but
                                         checkpointed\" (resume with
                                         bfvr resume --from <file>).
                                         Needs exactly one engine × repr lane
                    [--checkpoint-every <n>]   durable-checkpoint period in
                                         iterations (default 1)
                    [--result-out <file>]      write a one-line JSON summary
                                         of the final outcome (job runner
                                         protocol; single lane only)
  bfvr resume --from <ckpt>  continue an interrupted reach run from its
                    durable checkpoint file: rebuilds the circuit recorded in
                    the header (fingerprint-checked), re-interns the saved
                    sets, and iterates to the same fixed point. Accepts the
                    same limit/trace/checkpoint/result flags as reach
                    (--checkpoint-out defaults to the --from file)
  bfvr serve --dir <dir>     run every journaled job in <dir> to a terminal
                    state with a supervised pool of child processes: crashes
                    retry with exponential backoff, repeat offenders are
                    quarantined, SIGTERM'd children checkpoint and resume
                    [--workers <n>] [--max-attempts <n>] [--job-timeout <sec>]
  bfvr submit <file> --dir <dir>  append a job to <dir>'s journal
                    [--id <id>] [--engine E] [--repr R] [--order O]
                    [--priority <n>]     higher runs first; lowest shed first
                    [--checkpoint-every <n>] [--node-limit <n>]
                    [--time-limit <sec>]
                    [--fault kill@K]     fault injection: crash the child at
                                         iteration K on its first attempt
  bfvr audit <file> [--engine bfv|cbm|mono|iwls95|cdec|all]  (default all)
                    [--repr chi|bfv|cdec|zdd|zono|native|all]  (default native)
                    [--order s1|decl|d|coi|force|o:<seed>]
                    [--sift] [--sift-maxgrowth <f>] [--sift-trigger <f>]
                    [--time-limit <sec>] [--node-limit <nodes>]
                    [--selftest]         also run the mutation harness:
                                         seed deliberate corruptions and
                                         prove every pass detects its own
          runs every analysis pass over every engine's intermediate sets;
          prints compiler-style diagnostics, sorted by severity then pass;
          exits nonzero iff any error-severity finding
  bfvr lint <file>  static netlist analysis (bfvr-nlint): combinational
                    cycles, undriven/unread signals, ternary constant
                    propagation (stuck-at gates, constant latches), dead
                    latches, duplicate gates, per-latch support stats;
                    prints compiler-style diagnostics and exits nonzero
                    iff any error-severity finding
                    [--fix <out>]        write a lint-gated simplification
                                         (constant folding, buffer collapse,
                                         duplicate merging) as .bench; the
                                         rewrite preserves the reached-state
                                         count exactly
                    [--prune]            with --fix: also drop latches
                                         outside every output cone (projects
                                         the state space — counts may shrink)
                    [--selftest]         run the netlist mutation harness:
                                         nine seeded corruptions, each must
                                         be caught by its intended pass
  bfvr check <file> --bad <cube>          cube over latches in file order,
                                          e.g. 1x0x (x = don't care)
  bfvr trace <file> --to <cube>
  bfvr report <trace.jsonl> [--format text|md]
          render a --trace-out trace as per-engine timeline tables;
          exits nonzero on schema violations (doubles as a validator)

Files ending in .blif parse as BLIF; everything else as ISCAS89 bench.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<ExitCode, String> {
    // `reach` and `resume` have a third exit state — EXIT_CHECKPOINTED,
    // "interrupted but resumable" — so they return their code directly;
    // everything else is plain success/failure.
    let simple = |r: Result<(), String>| r.map(|()| ExitCode::SUCCESS);
    match args.first().map(String::as_str) {
        Some("gen") => simple(cmd_gen(args.get(1).ok_or("gen needs a family spec")?)),
        Some("stats") => simple(cmd_stats(&load(args.get(1).ok_or("stats needs a file")?)?)),
        Some("convert") => simple(cmd_convert(args)),
        Some("reach") => cmd_reach(args),
        Some("resume") => cmd_resume(args),
        Some("serve") => simple(cmd_serve(args)),
        Some("submit") => simple(cmd_submit(args)),
        Some("audit") => simple(cmd_audit(args)),
        Some("lint") => simple(cmd_lint(args)),
        Some("check") => simple(cmd_check(args)),
        Some("trace") => simple(cmd_trace(args)),
        Some("report") => simple(cmd_report(args)),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn generate(spec: &str) -> Result<Netlist, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let p = |i: usize| -> Result<u32, String> {
        parts
            .get(i)
            .ok_or_else(|| format!("`{spec}` needs a parameter"))?
            .parse()
            .map_err(|e| format!("bad parameter in `{spec}`: {e}"))
    };
    Ok(match parts[0] {
        "s27" => bfvr::netlist::circuits::s27(),
        "counter" => generators::counter(p(1)?),
        "modk" => generators::counter_modk(p(1)?, u64::from(p(2)?)),
        "gray" => generators::gray(p(1)?),
        "lfsr" => generators::lfsr(p(1)?),
        "shift" => generators::shift_register(p(1)?),
        "johnson" => generators::johnson(p(1)?),
        "pair" => generators::paired_registers(p(1)?),
        "queue" => generators::queue_controller(p(1)?),
        "rot" => generators::rotator(p(1)?),
        "traffic" => generators::traffic_chain(p(1)?),
        "load" => generators::loadable_register(p(1)?),
        "mask" => generators::masked_accumulator(p(1)?),
        other => return Err(format!("unknown family `{other}`")),
    })
}

fn cmd_gen(spec: &str) -> Result<(), String> {
    let net = generate(spec)?;
    print!("{}", bench::write(&net).map_err(|e| e.to_string())?);
    Ok(())
}

fn load(path: &str) -> Result<Netlist, String> {
    if let Some(spec) = path.strip_prefix("gen:") {
        return generate(spec);
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if path.ends_with(".blif") {
        blif::parse(&text).map_err(|e| format!("{path}: {e}"))
    } else {
        bench::parse_named(&text, path).map_err(|e| format!("{path}: {e}"))
    }
}

fn cmd_stats(net: &Netlist) -> Result<(), String> {
    println!("{}: {}", net.name(), net.stats());
    let levels = bfvr::netlist::topo::levels(net).map_err(|e| e.to_string())?;
    println!("logic depth: {}", levels.iter().max().copied().unwrap_or(0));
    let (latches, inputs) = bfvr::netlist::topo::cone_of_influence(net, net.outputs());
    println!(
        "cone of influence of the outputs: {} of {} latches, {} of {} inputs",
        latches.len(),
        net.latches().len(),
        inputs.len(),
        net.inputs().len()
    );
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let net = load(args.get(1).ok_or("convert needs a file")?)?;
    let to = flag_value(args, "--to").ok_or("convert needs --to bench|blif")?;
    match to.as_str() {
        "bench" => print!("{}", bench::write(&net).map_err(|e| e.to_string())?),
        "blif" => print!("{}", blif::write(&net)),
        "verilog" | "v" => print!("{}", bfvr::netlist::verilog::write(&net)),
        other => return Err(format!("unknown format `{other}`")),
    }
    Ok(())
}

fn parse_order(args: &[String]) -> Result<OrderHeuristic, String> {
    match flag_value(args, "--order") {
        None => Ok(OrderHeuristic::DfsFanin),
        Some(tok) => parse_order_token(&tok),
    }
}

/// Parses one `--order` token (`s1`/`decl`/`d`/`coi`/`force`/`o:SEED`,
/// with `s2` kept as a legacy alias for `decl`) — also the format
/// durable checkpoint headers and job specs record an order in.
fn parse_order_token(tok: &str) -> Result<OrderHeuristic, String> {
    OrderHeuristic::parse_token(tok).ok_or_else(|| format!("unknown order `{tok}`"))
}

/// The inverse of [`parse_order_token`]: the CLI token for an order,
/// written into durable checkpoint headers so `bfvr resume` can rebuild
/// the exact manager the checkpoint was taken in.
fn order_token(order: OrderHeuristic) -> String {
    match order {
        OrderHeuristic::DfsFanin => "s1".to_string(),
        OrderHeuristic::Declaration => "decl".to_string(),
        OrderHeuristic::Reversed => "d".to_string(),
        OrderHeuristic::Random(seed) => format!("o:{seed}"),
        OrderHeuristic::Coi => "coi".to_string(),
        OrderHeuristic::Force => "force".to_string(),
    }
}

/// Parses `reach`'s `--order` into the selected order list: one token
/// selects that order, `all` crosses every lane with the static
/// portfolio (fan-in, declaration, COI, FORCE), no flag selects the
/// fan-in default.
fn parse_order_list(args: &[String]) -> Result<Vec<OrderHeuristic>, String> {
    match flag_value(args, "--order").as_deref() {
        None => Ok(vec![OrderHeuristic::DfsFanin]),
        Some("all") => Ok(vec![
            OrderHeuristic::DfsFanin,
            OrderHeuristic::Declaration,
            OrderHeuristic::Coi,
            OrderHeuristic::Force,
        ]),
        Some(tok) => Ok(vec![parse_order_token(tok)?]),
    }
}

fn parse_opts(args: &[String]) -> Result<ReachOptions, String> {
    let mut opts = ReachOptions::default();
    if let Some(s) = flag_value(args, "--time-limit") {
        let secs: u64 = s.parse().map_err(|e| format!("bad --time-limit: {e}"))?;
        opts.time_limit = Some(Duration::from_secs(secs));
    }
    if let Some(s) = flag_value(args, "--node-limit") {
        opts.node_limit = Some(s.parse().map_err(|e| format!("bad --node-limit: {e}"))?);
    }
    if let Some(s) = flag_value(args, "--cache-limit") {
        let slots: usize = s.parse().map_err(|e| format!("bad --cache-limit: {e}"))?;
        if slots == 0 {
            return Err("--cache-limit must be at least 1".into());
        }
        opts.cache_limit = Some(slots);
    }
    opts.sift = args.iter().any(|a| a == "--sift");
    if let Some(s) = flag_value(args, "--sift-maxgrowth") {
        if !opts.sift {
            return Err("--sift-maxgrowth requires --sift".into());
        }
        opts.sift_max_growth = s
            .parse()
            .map_err(|e| format!("bad --sift-maxgrowth: {e}"))?;
        if opts.sift_max_growth <= 1.0 {
            return Err("--sift-maxgrowth must be > 1".into());
        }
    }
    if let Some(s) = flag_value(args, "--sift-trigger") {
        if !opts.sift {
            return Err("--sift-trigger requires --sift".into());
        }
        opts.sift_trigger = s.parse().map_err(|e| format!("bad --sift-trigger: {e}"))?;
        if opts.sift_trigger < 1.0 {
            return Err("--sift-trigger must be >= 1".into());
        }
    }
    opts.frozen = args.iter().any(|a| a == "--frozen");
    if let Some(s) = flag_value(args, "--jobs") {
        let n: usize = s.parse().map_err(|e| format!("bad --jobs: {e}"))?;
        if n == 0 {
            return Err("--jobs must be at least 1".into());
        }
        opts.jobs = n;
    }
    Ok(opts)
}

/// Parses the escalation flags; `None` unless `--escalate` is given.
fn parse_escalation(args: &[String]) -> Result<Option<EscalationPolicy>, String> {
    let escalate = args.iter().any(|a| a == "--escalate");
    let factor = flag_value(args, "--escalate-factor");
    let max_budget = flag_value(args, "--max-budget");
    if !escalate {
        if factor.is_some() || max_budget.is_some() {
            return Err("--escalate-factor/--max-budget require --escalate".into());
        }
        return Ok(None);
    }
    let mut policy = EscalationPolicy::default();
    if let Some(f) = factor {
        policy.factor = f
            .parse()
            .map_err(|e| format!("bad --escalate-factor: {e}"))?;
        if policy.factor <= 1.0 {
            return Err("--escalate-factor must be > 1".into());
        }
    }
    if let Some(n) = max_budget {
        policy.max_node_budget = Some(n.parse().map_err(|e| format!("bad --max-budget: {e}"))?);
    }
    Ok(Some(policy))
}

/// Parses `--engine` into the selected engine list; `all` expands to
/// every engine, no flag selects `default`.
fn parse_engines(args: &[String], default: &[EngineKind]) -> Result<Vec<EngineKind>, String> {
    // Case-insensitive: job specs carry the benchmark-table labels
    // (`BFV`, `MONO`, …) and feed them straight back to this flag.
    Ok(
        match flag_value(args, "--engine")
            .map(|s| s.to_ascii_lowercase())
            .as_deref()
        {
            None => default.to_vec(),
            Some("all") => EngineKind::all().to_vec(),
            Some(s) => match EngineKind::parse(s) {
                Some(e) => vec![e],
                None => return Err(format!("unknown engine `{s}`")),
            },
        },
    )
}

/// Parses `--repr` into the selected representation list; `None` (no
/// flag, or `native`) means each engine's native representation.
fn parse_reprs(args: &[String]) -> Result<Option<Vec<ReprKind>>, String> {
    Ok(
        match flag_value(args, "--repr")
            .map(|s| s.to_ascii_lowercase())
            .as_deref()
        {
            None | Some("native") => None,
            Some("all") => Some(ReprKind::all().to_vec()),
            Some(s) => match ReprKind::parse(s) {
                Some(r) => Some(vec![r]),
                None => return Err(format!("unknown representation `{s}`")),
            },
        },
    )
}

/// Crosses the selected engines with the selected representations,
/// dropping pairs the engine cannot drive (e.g. `cdec × zdd`). Errors
/// when the cross leaves nothing to run.
fn build_lanes(engines: &[EngineKind], reprs: Option<&[ReprKind]>) -> Result<Vec<Lane>, String> {
    let lanes: Vec<Lane> = match reprs {
        None => engines.iter().map(|&e| Lane::native(e)).collect(),
        Some(rs) => engines
            .iter()
            .flat_map(|&e| {
                rs.iter()
                    .filter(move |&&r| e.supported_reprs().contains(&r))
                    .map(move |&r| Lane::new(e, r))
            })
            .collect(),
    };
    if lanes.is_empty() {
        return Err("no selected engine supports the requested representation".into());
    }
    Ok(lanes)
}

/// Parses `--trace-out`/`--trace-sample` into a JSONL-backed tracer
/// handle with the stream header already written (`None` without
/// `--trace-out`).
fn parse_trace(args: &[String], label: &str) -> Result<Option<TraceHandle>, String> {
    let sample = match flag_value(args, "--trace-sample") {
        None => 1,
        Some(s) => {
            let n: u64 = s.parse().map_err(|e| format!("bad --trace-sample: {e}"))?;
            if n == 0 {
                return Err("--trace-sample must be at least 1".into());
            }
            n
        }
    };
    let Some(path) = flag_value(args, "--trace-out") else {
        if sample != 1 {
            return Err("--trace-sample requires --trace-out".into());
        }
        return Ok(None);
    };
    let file = std::fs::File::create(&path).map_err(|e| format!("{path}: {e}"))?;
    let sink = JsonlSink::new(std::io::BufWriter::new(file));
    let mut tracer = Tracer::with_sampling(Box::new(sink), sample);
    tracer.meta(label);
    Ok(Some(trace_handle(tracer)))
}

/// Everything needed to write durable checkpoint files for a single-lane
/// run: the output path, the header context (`bfvr resume` rebuilds the
/// circuit and manager from it), and latches recording what happened —
/// a failed periodic write must never abort the in-memory traversal, so
/// errors are held here and surfaced after the run.
struct Durable {
    path: PathBuf,
    every: usize,
    order: String,
    circuit: String,
    fingerprint: u64,
    /// Latched first write failure (reported, not fatal).
    error: Rc<RefCell<Option<String>>>,
    /// Whether at least one durable checkpoint reached disk.
    wrote: Rc<Cell<bool>>,
}

impl Durable {
    fn new(
        path: PathBuf,
        every: usize,
        order: String,
        circuit: String,
        net: &Netlist,
    ) -> Result<Durable, String> {
        // Fingerprint the canonical bench text, not the on-disk bytes:
        // resume re-derives it from the rebuilt circuit the same way.
        let text = bench::write(net).map_err(|e| e.to_string())?;
        Ok(Durable {
            path,
            every,
            order,
            circuit,
            fingerprint: fnv1a64(text.as_bytes()),
            error: Rc::new(RefCell::new(None)),
            wrote: Rc::new(Cell::new(false)),
        })
    }

    /// The periodic hook the fixed-point driver invokes mid-run.
    fn hook(&self) -> CheckpointHook {
        let path = self.path.clone();
        let order = self.order.clone();
        let circuit = self.circuit.clone();
        let fingerprint = self.fingerprint;
        let error = Rc::clone(&self.error);
        let wrote = Rc::clone(&self.wrote);
        Rc::new(move |m, cp| {
            let meta = CkptMeta {
                engine: cp.engine,
                repr: cp.repr,
                order: order.clone(),
                circuit: circuit.clone(),
                fingerprint,
                num_vars: m.num_vars(),
                level2var: level_map_of(m),
                iterations: cp.iterations,
            };
            match write_checkpoint(&path, m, &meta, cp.state()) {
                Ok(()) => wrote.set(true),
                Err(e) => {
                    let mut latch = error.borrow_mut();
                    if latch.is_none() {
                        *latch = Some(e.to_string());
                    }
                }
            }
        })
    }

    /// Direct durable write (the final checkpoint after the run, where
    /// only a shared manager borrow is available).
    fn write_now(&self, m: &bfvr::bdd::BddManager, cp: &Checkpoint) {
        let meta = CkptMeta {
            engine: cp.engine,
            repr: cp.repr,
            order: self.order.clone(),
            circuit: self.circuit.clone(),
            fingerprint: self.fingerprint,
            num_vars: m.num_vars(),
            level2var: level_map_of(m),
            iterations: cp.iterations,
        };
        match write_checkpoint(&self.path, m, &meta, cp.state()) {
            Ok(()) => self.wrote.set(true),
            Err(e) => {
                let mut latch = self.error.borrow_mut();
                if latch.is_none() {
                    *latch = Some(e.to_string());
                }
            }
        }
    }
}

/// Parses the durable-checkpoint / job-runner flags shared by `reach`
/// and `resume`. `default_out` supplies `resume`'s fallback (its own
/// `--from` file).
fn parse_durable(
    args: &[String],
    net: &Netlist,
    order: OrderHeuristic,
    circuit: &str,
    default_out: Option<PathBuf>,
) -> Result<Option<Durable>, String> {
    let out = flag_value(args, "--checkpoint-out")
        .map(PathBuf::from)
        .or(default_out);
    let every = match flag_value(args, "--checkpoint-every") {
        None => 1,
        Some(s) => {
            let n: usize = s
                .parse()
                .map_err(|e| format!("bad --checkpoint-every: {e}"))?;
            if n == 0 {
                return Err("--checkpoint-every must be at least 1".into());
            }
            n
        }
    };
    let Some(path) = out else {
        if flag_value(args, "--checkpoint-every").is_some() {
            return Err("--checkpoint-every requires --checkpoint-out".into());
        }
        return Ok(None);
    };
    Durable::new(path, every, order_token(order), circuit.to_string(), net).map(Some)
}

/// Runs `body` with SIGINT/SIGTERM bridged into a cooperative cancel
/// token: the handler latches an atomic, a bridge thread copies the
/// latch into the token the BDD manager polls, and the traversal unwinds
/// as a clean time-out with a checkpoint instead of dying mid-update.
fn with_interrupt_token<T>(body: impl FnOnce(&Arc<AtomicBool>) -> T) -> T {
    signal::install_handlers();
    let token = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let bridge = {
        let token = Arc::clone(&token);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if signal::interrupted() {
                    token.store(true, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };
    let r = body(&token);
    stop.store(true, Ordering::Relaxed);
    let _ = bridge.join();
    r
}

/// Writes the `--result-out` summary: one canonical-JSON line with the
/// outcome label, counts and lane — the contract the supervised job
/// runner parses.
fn write_result_file(path: &str, r: &ReachResult) -> Result<(), String> {
    let mut pairs = vec![
        ("outcome", Value::Str(r.outcome.label().to_string())),
        ("lane", Value::Str(lane_label(r.engine, r.repr).to_string())),
        ("iterations", Value::Num(r.iterations as f64)),
        ("over_approx", Value::Bool(r.over_approx)),
    ];
    if let Some(s) = r.reached_states {
        pairs.push(("states", Value::Num(s)));
    }
    let line = format!("{}\n", obj(pairs).encode());
    std::fs::write(path, line).map_err(|e| format!("{path}: {e}"))
}

/// Settles a (single-lane) run under the durable-checkpoint protocol:
/// writes the final checkpoint / result file, surfaces latched periodic
/// write failures, and picks the exit code — 0 for a fixed point,
/// [`EXIT_CHECKPOINTED`] when the run stopped early but left a durable
/// checkpoint to resume from, an error otherwise when interrupted.
fn settle_durable(
    m: &bfvr::bdd::BddManager,
    r: &ReachResult,
    durable: Option<&Durable>,
    result_out: Option<&str>,
    interrupted: bool,
) -> Result<ExitCode, String> {
    if let Some(d) = durable {
        if r.outcome == Outcome::FixedPoint {
            // Done: a stale checkpoint would only invite a pointless
            // resume after the fact.
            let _ = std::fs::remove_file(&d.path);
        } else if let Some(cp) = &r.checkpoint {
            d.write_now(m, cp);
        }
        if let Some(e) = d.error.borrow().as_ref() {
            eprintln!("warning: durable checkpoint write failed: {e}");
        }
    }
    if let Some(path) = result_out {
        write_result_file(path, r)?;
    }
    if r.outcome != Outcome::FixedPoint {
        if let Some(d) = durable {
            if d.wrote.get() && r.outcome != Outcome::Error {
                eprintln!(
                    "checkpointed at iteration {} -> {} (resume with: bfvr resume --from {})",
                    r.iterations,
                    d.path.display(),
                    d.path.display()
                );
                return Ok(ExitCode::from(
                    u8::try_from(EXIT_CHECKPOINTED).unwrap_or(u8::MAX),
                ));
            }
        }
        if interrupted {
            return Err(
                "interrupted before reaching a fixed point (no durable checkpoint written)".into(),
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_reach(args: &[String]) -> Result<ExitCode, String> {
    let circuit = args.get(1).ok_or("reach needs a file")?.clone();
    let net = load(&circuit)?;
    let orders = parse_order_list(args)?;
    let order = orders[0];
    let mut opts = parse_opts(args)?;
    opts.order = order;
    let escalation = parse_escalation(args)?;
    if escalation.is_some() && opts.node_limit.is_none() && opts.time_limit.is_none() {
        return Err("--escalate needs --node-limit and/or --time-limit to raise".into());
    }
    let race = args.iter().any(|a| a == "--race");
    // A race defaults to the full portfolio — one engine has nothing to
    // race against; a plain run defaults to the paper's BFV flow.
    let default_engines: &[EngineKind] = if race {
        &EngineKind::all()
    } else {
        &[EngineKind::Bfv]
    };
    let engines = parse_engines(args, default_engines)?;
    let reprs = parse_reprs(args)?;
    let mut lanes = build_lanes(&engines, reprs.as_deref())?;
    if orders.len() > 1 {
        // `--order all`: the ordering becomes a third portfolio axis —
        // every engine × repr lane is crossed with every static order.
        lanes = lanes
            .iter()
            .flat_map(|&l| orders.iter().map(move |&o| l.with_order(o)))
            .collect();
    }
    if !race && !opts.frozen && flag_value(args, "--jobs").is_some() {
        return Err("--jobs requires --race or --frozen".into());
    }
    let result_out = flag_value(args, "--result-out");
    let kill_at = match flag_value(args, "--kill-at-iter") {
        None => None,
        Some(s) => Some(
            s.parse::<usize>()
                .map_err(|e| format!("bad --kill-at-iter: {e}"))?,
        ),
    };
    if race
        && (flag_value(args, "--checkpoint-out").is_some()
            || result_out.is_some()
            || kill_at.is_some())
    {
        return Err(
            "--checkpoint-out/--result-out/--kill-at-iter are not available with --race".into(),
        );
    }
    let durable = parse_durable(args, &net, order, &circuit, None)?;
    if (durable.is_some() || result_out.is_some()) && lanes.len() != 1 {
        return Err("--checkpoint-out/--result-out need exactly one engine × repr lane".into());
    }
    // The meta header records the chosen ordering and a lint summary
    // (`Ne/Nw/Ni` finding counts), so a trace identifies both the
    // variable-order axis and the structural health of its input.
    let order_label = if orders.len() > 1 {
        "all".to_string()
    } else {
        order_token(order)
    };
    let lint = bfvr::nlint::run_passes(&net).summary();
    // Frozen-backend provenance in the meta header: requested pool size
    // (`auto` = all cores); each lane's *effective* width is in its
    // result/report row.
    let frozen_label = if opts.frozen {
        let jobs = if opts.jobs == 0 {
            "auto".to_string()
        } else {
            opts.jobs.to_string()
        };
        format!(" frozen=on jobs={jobs}")
    } else {
        String::new()
    };
    // Sifting provenance mirrors the frozen backend's: the meta header
    // records that dynamic reordering was armed and with what knobs;
    // whether it *fired* is in the per-lane reorder events.
    let sift_label = if opts.sift {
        format!(
            " sift=on maxgrowth={} trigger={}",
            opts.sift_max_growth, opts.sift_trigger
        )
    } else {
        String::new()
    };
    let trace = parse_trace(
        args,
        &format!(
            "bfvr reach {} order={order_label} lint={lint}{frozen_label}{sift_label}",
            net.name()
        ),
    )?;
    opts.trace.clone_from(&trace);
    let run_span = trace.as_ref().map(|t| {
        t.borrow_mut()
            .open_span(SpanKind::Run, net.name(), Counters::new())
    });
    let result = if race {
        cmd_reach_race(args, &net, &opts, &lanes, escalation).map(|()| ExitCode::SUCCESS)
    } else {
        reach_plain(
            args,
            &net,
            order,
            &opts,
            &lanes,
            escalation.as_ref(),
            durable.as_ref(),
            result_out.as_deref(),
            kill_at,
        )
    };
    // Close the run span and flush even when a lane failed: a trace of a
    // timed-out run is exactly what the telemetry is for. A sink that
    // swallowed a write error reports it now — a "successful" run whose
    // trace silently went nowhere must not exit 0.
    let mut trace_error = None;
    if let Some(t) = &trace {
        let mut t = t.borrow_mut();
        if let Some(id) = run_span {
            t.close_span(id, &Counters::new());
        }
        t.finish();
        trace_error = t.take_error();
    }
    let code = result?;
    if let Some(e) = trace_error {
        return Err(format!("--trace-out: trace write failed: {e}"));
    }
    Ok(code)
}

/// The non-racing `bfvr reach` path: run each selected lane in its own
/// fresh manager and print one summary row per lane. An
/// over-approximating lane prints its count as `<=N`.
///
/// SIGINT/SIGTERM are bridged into each manager's cooperative cancel
/// token; an interrupted single-lane run with `--checkpoint-out` settles
/// through the durable-checkpoint exit protocol (see [`settle_durable`]).
#[allow(clippy::too_many_arguments)]
fn reach_plain(
    args: &[String],
    net: &Netlist,
    order: OrderHeuristic,
    opts: &ReachOptions,
    lanes: &[Lane],
    escalation: Option<&EscalationPolicy>,
    durable: Option<&Durable>,
    result_out: Option<&str>,
    kill_at: Option<usize>,
) -> Result<ExitCode, String> {
    println!(
        "{:10} {:>6} {:>14} {:>7} {:>10} {:>11}",
        "lane", "status", "states", "iters", "time(ms)", "peak nodes"
    );
    let dump = args.iter().any(|a| a == "--dump-reached");
    let show_stats = args.iter().any(|a| a == "--stats");
    with_interrupt_token(|cancel| {
        let mut exit = ExitCode::SUCCESS;
        for &lane in lanes {
            if cancel.load(Ordering::Relaxed) {
                return Err("interrupted before completion (remaining lanes skipped)".into());
            }
            let lane_order = lane.order.unwrap_or(order);
            let (mut m, fsm) = EncodedFsm::encode(net, lane_order).map_err(|e| e.to_string())?;
            m.set_cancel_token(Some(Arc::clone(cancel)));
            let mut lane_opts = opts.clone();
            if let Some(d) = durable {
                lane_opts.checkpoint_every = Some(d.every);
                lane_opts.checkpoint_hook = Some(d.hook());
            }
            if let Some(k) = kill_at {
                // Fault injection for the supervisor's crash-recovery tests:
                // die the way a real crash does — by signal, mid-run, after
                // the previous iteration's durable checkpoint hit disk.
                lane_opts.observer = Some(Rc::new(move |_, _, view| {
                    if view.iteration >= k {
                        eprintln!("fault injection: aborting at iteration {}", view.iteration);
                        std::process::abort();
                    }
                }));
            }
            let r: ReachResult = match escalation {
                None => run_repr(lane.engine, lane.repr, &mut m, &fsm, &lane_opts),
                Some(policy) => {
                    let report = run_escalating_repr(
                        lane.engine,
                        lane.repr,
                        &mut m,
                        &fsm,
                        &lane_opts,
                        policy,
                    );
                    for (i, round) in report.rounds.iter().enumerate().skip(1) {
                        eprintln!(
                            "{}: round {i} ({}): {} at {} iterations under {} nodes",
                            lane.label(),
                            if round.resumed {
                                "resumed"
                            } else {
                                "restarted"
                            },
                            round.outcome.label(),
                            round.iterations,
                            round
                                .node_limit
                                .map_or("unlimited".into(), |n| n.to_string()),
                        );
                    }
                    report.result
                }
            };
            println!(
                "{:10} {:>6} {:>14} {:>7} {:>10.1} {:>11}",
                lane_cell(lane, opts),
                r.outcome.label(),
                states_cell(r.reached_states, r.over_approx),
                r.iterations,
                r.elapsed.as_secs_f64() * 1e3,
                r.peak_nodes
            );
            if let Some(j) = r.frozen_jobs {
                println!("  frozen image pool: {j} worker thread(s)");
            }
            if r.reorders > 0 {
                let (before, after) = r.reorder_nodes;
                println!(
                    "  dynamic reorder: {} sift pass(es), {before} -> {after} live nodes",
                    r.reorders
                );
            }
            if show_stats {
                let s = m.stats();
                println!(
                    "  tables: {} KiB computed caches + {} KiB unique table resident; \
                 {} mk calls, {} GCs",
                    s.cache_bytes / 1024,
                    s.unique_bytes / 1024,
                    s.mk_calls,
                    s.gc_runs
                );
                for c in m.cache_stats() {
                    if c.lookups == 0 {
                        continue;
                    }
                    println!(
                        "  cache {:10} {:>10} lookups {:>6.1}% hit  {:>8} / {:>8} slots  {:>6} KiB",
                        c.name,
                        c.lookups,
                        c.hits as f64 / c.lookups as f64 * 100.0,
                        c.entries,
                        c.capacity,
                        c.bytes / 1024
                    );
                }
            }
            if dump {
                if let Some(chi) = &r.reached_chi {
                    let cubes = m.isop(chi.bdd()).map_err(|e| e.to_string())?;
                    // Column per latch, in declaration order.
                    let mut comp_of_var = std::collections::HashMap::new();
                    for c in 0..fsm.num_latches() {
                        let l = fsm.latch_of_component(c);
                        comp_of_var.insert(fsm.state_vars(l).0, l);
                    }
                    println!("reached set, one cube per line (latch order):");
                    for cube in &cubes {
                        let mut row = vec!['-'; fsm.num_latches()];
                        for &(v, pol) in cube {
                            let l = comp_of_var[&v];
                            row[l] = if pol { '1' } else { '0' };
                        }
                        println!("  {}", row.iter().collect::<String>());
                    }
                }
            }
            exit = settle_durable(&m, &r, durable, result_out, cancel.load(Ordering::Relaxed))?;
        }
        Ok(exit)
    })
}

/// The lane column: [`Lane::display`], tagged `*F` when the frozen
/// parallel image backend is active for the lane and `~S` when dynamic
/// sifting is armed for it. Each tag applies only where the backend
/// actually engages — a χ lane under `--frozen` runs its ordinary
/// relational product, and a BFV/CDEC/ZDD/zono lane under `--sift` keeps
/// its static order (the representation is tied to it) — so the table
/// shows what each lane really ran, e.g. `MONO@FORCE~S`.
fn lane_cell(lane: Lane, opts: &ReachOptions) -> String {
    let mut cell = lane.display();
    if opts.frozen && lane.engine.frozen_capable() {
        cell.push_str("*F");
    }
    if opts.sift && lane.repr.supports_reorder() {
        cell.push_str("~S");
    }
    cell
}

/// The reached-states column: `<=N` for an over-approximating lane's
/// upper bound, `-` when the lane has no count.
fn states_cell(states: Option<f64>, over_approx: bool) -> String {
    match states {
        None => "-".into(),
        Some(s) if over_approx => format!("<={s}"),
        Some(s) => format!("{s}"),
    }
}

/// `bfvr reach --race`: race the selected lanes, each in its own
/// worker thread with a private manager, and report every lane plus the
/// winner. `--dump-reached` is rejected: the winning lane's manager (and
/// the reached set rooted in it) does not outlive its thread.
fn cmd_reach_race(
    args: &[String],
    net: &Netlist,
    opts: &ReachOptions,
    lanes: &[Lane],
    escalation: Option<EscalationPolicy>,
) -> Result<(), String> {
    if args.iter().any(|a| a == "--dump-reached") {
        return Err("--dump-reached is not available with --race (the winning \
                    lane's manager dies with its thread); rerun the winning \
                    engine alone to dump the reached set"
            .into());
    }
    let jobs = match flag_value(args, "--jobs") {
        None => 0,
        Some(s) => {
            let n: usize = s.parse().map_err(|e| format!("bad --jobs: {e}"))?;
            if n == 0 {
                return Err("--jobs must be at least 1".into());
            }
            n
        }
    };
    let config = RaceConfig { jobs, escalation };
    let report = run_racing(lanes, net, opts, &config);
    println!(
        "{:16} {:>9} {:>14} {:>7} {:>10} {:>11}",
        "lane", "status", "states", "iters", "time(ms)", "peak nodes"
    );
    for (i, lane) in report.lanes.iter().enumerate() {
        let status = match (lane.outcome, lane.cancelled) {
            (None, _) => "skipped".to_string(),
            (Some(o), true) => format!("{}*", o.label()),
            (Some(o), false) => o.label().to_string(),
        };
        let won = if report.winner == Some(i) {
            " <- winner"
        } else {
            ""
        };
        // Effective frozen-pool width (always 1 in a race — the race
        // owns the thread budget), so the report still shows which
        // lanes took the frozen path.
        let pool = lane
            .frozen_jobs
            .map_or(String::new(), |j| format!(" F×{j}"));
        // Reorder provenance: how many sift passes actually fired on
        // this lane (0 suppresses the tag — an armed lane that never
        // crossed the trigger ran its static order end to end).
        let sifted = if lane.reorders > 0 {
            format!(" S×{}", lane.reorders)
        } else {
            String::new()
        };
        println!(
            "{:16} {:>9} {:>14} {:>7} {:>10.1} {:>11}{}{}{}",
            lane_cell(lanes[i], opts),
            status,
            states_cell(lane.reached_states, lane.over_approx),
            lane.iterations,
            lane.elapsed.as_secs_f64() * 1e3,
            lane.peak_nodes,
            pool,
            sifted,
            won,
        );
    }
    println!(
        "race over {} lane(s) finished in {:.1} ms (* = cancelled by the winner)",
        report.lanes.len(),
        report.elapsed.as_secs_f64() * 1e3
    );
    match report.result {
        Some(r) if r.outcome == bfvr::reach::Outcome::FixedPoint => Ok(()),
        Some(r) => Err(format!(
            "no lane reached a fixed point (best: {} {})",
            lane_label(r.engine, r.repr),
            r.outcome.label()
        )),
        None => Err("race had no engines".into()),
    }
}

/// `bfvr resume`: continue an interrupted traversal from its durable
/// checkpoint file. The header records everything needed to rebuild the
/// run's context — circuit spec, variable order, manager width and a
/// circuit fingerprint — so resume takes no positional circuit argument
/// and refuses a checkpoint whose circuit no longer matches.
fn cmd_resume(args: &[String]) -> Result<ExitCode, String> {
    let from = flag_value(args, "--from").ok_or("resume needs --from <checkpoint>")?;
    let from_path = PathBuf::from(&from);
    let meta = read_meta(&from_path).map_err(|e| format!("{from}: {e}"))?;
    let net = load(&meta.circuit)?;
    let text = bench::write(&net).map_err(|e| e.to_string())?;
    let have = fnv1a64(text.as_bytes());
    if have != meta.fingerprint {
        return Err(format!(
            "{from}: circuit `{}` does not match the checkpoint \
             (fingerprint {have:#018x}, checkpoint records {:#018x}) — \
             was the netlist edited or replaced?",
            meta.circuit, meta.fingerprint
        ));
    }
    let order = parse_order_token(&meta.order)?;
    let mut opts = parse_opts(args)?;
    let result_out = flag_value(args, "--result-out");
    // An interrupted resume checkpoints over its own input by default,
    // so repeated kill/resume cycles keep converging on one file.
    let durable = parse_durable(args, &net, order, &meta.circuit, Some(from_path.clone()))?;
    let trace = parse_trace(args, &format!("bfvr resume {}", net.name()))?;
    opts.trace.clone_from(&trace);
    let (mut m, fsm) = EncodedFsm::encode(&net, order).map_err(|e| e.to_string())?;
    let (_, cp) = read_checkpoint(&from_path, &mut m).map_err(|e| format!("{from}: {e}"))?;
    println!(
        "resuming {} on {} from iteration {}",
        lane_label(cp.engine, cp.repr),
        net.name(),
        cp.iterations
    );
    println!(
        "{:10} {:>6} {:>14} {:>7} {:>10} {:>11}",
        "lane", "status", "states", "iters", "time(ms)", "peak nodes"
    );
    let run_span = trace.as_ref().map(|t| {
        t.borrow_mut()
            .open_span(SpanKind::Run, net.name(), Counters::new())
    });
    let result = with_interrupt_token(|cancel| {
        m.set_cancel_token(Some(Arc::clone(cancel)));
        if let Some(d) = &durable {
            opts.checkpoint_every = Some(d.every);
            opts.checkpoint_hook = Some(d.hook());
        }
        let r = bfvr::reach::resume(&mut m, &fsm, &opts, cp);
        println!(
            "{:10} {:>6} {:>14} {:>7} {:>10.1} {:>11}",
            lane_label(r.engine, r.repr),
            r.outcome.label(),
            states_cell(r.reached_states, r.over_approx),
            r.iterations,
            r.elapsed.as_secs_f64() * 1e3,
            r.peak_nodes
        );
        if r.reorders > 0 {
            let (before, after) = r.reorder_nodes;
            println!(
                "  dynamic reorder: {} sift pass(es), {before} -> {after} live nodes",
                r.reorders
            );
        }
        settle_durable(
            &m,
            &r,
            durable.as_ref(),
            result_out.as_deref(),
            cancel.load(Ordering::Relaxed),
        )
    });
    let mut trace_error = None;
    if let Some(t) = &trace {
        let mut t = t.borrow_mut();
        if let Some(id) = run_span {
            t.close_span(id, &Counters::new());
        }
        t.finish();
        trace_error = t.take_error();
    }
    let code = result?;
    if let Some(e) = trace_error {
        return Err(format!("--trace-out: trace write failed: {e}"));
    }
    Ok(code)
}

/// `bfvr serve`: replay the job directory's journal, then run every
/// non-terminal job to a terminal state under the supervised worker
/// pool (drain mode). Restart-safe by construction: killing the daemon
/// and rerunning `bfvr serve` picks up exactly where the journal ends.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let dir = PathBuf::from(flag_value(args, "--dir").ok_or("serve needs --dir <dir>")?);
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut cfg = SupervisorConfig::default();
    if let Some(s) = flag_value(args, "--workers") {
        cfg.workers = s.parse().map_err(|e| format!("bad --workers: {e}"))?;
        if cfg.workers == 0 {
            return Err("--workers must be at least 1".into());
        }
    }
    if let Some(s) = flag_value(args, "--max-attempts") {
        cfg.max_attempts = s.parse().map_err(|e| format!("bad --max-attempts: {e}"))?;
        if cfg.max_attempts == 0 {
            return Err("--max-attempts must be at least 1".into());
        }
    }
    let job_timeout = match flag_value(args, "--job-timeout") {
        None => None,
        Some(s) => Some(Duration::from_secs(
            s.parse().map_err(|e| format!("bad --job-timeout: {e}"))?,
        )),
    };
    let bfvr_bin =
        std::env::current_exe().map_err(|e| format!("cannot locate the bfvr binary: {e}"))?;
    let runner = ProcessRunner {
        bfvr_bin,
        dir: dir.clone(),
        job_timeout,
        term_grace: Duration::from_secs(5),
    };
    let sup = Supervisor::new(&dir, cfg, runner).map_err(|e| e.to_string())?;
    sup.drain().map_err(|e| e.to_string())?;
    // The supervisor owns its journal; re-replay the file for the
    // summary — which doubles as a standing test that the journal a
    // drain leaves behind is replayable.
    let ledger = replay(&dir.join("journal.jsonl")).map_err(|e| e.to_string())?;
    println!(
        "{:12} {:>11} {:>8} {:>14} {:>7}",
        "job", "phase", "attempts", "states", "iters"
    );
    for id in ledger.job_ids() {
        let Some(j) = ledger.get(id) else { continue };
        println!(
            "{:12} {:>11} {:>8} {:>14} {:>7}",
            id,
            j.phase.label(),
            j.attempts,
            j.states.map_or_else(|| "-".to_string(), |s| format!("{s}")),
            j.iterations
                .map_or_else(|| "-".to_string(), |i| i.to_string()),
        );
        if let Some(reason) = &j.reason {
            println!("  {id}: {reason}");
        }
    }
    Ok(())
}

/// `bfvr submit`: validate and journal one job for `bfvr serve`.
/// Submission is append-only and first-wins per id, so re-running a
/// submit script after a crash is harmless.
fn cmd_submit(args: &[String]) -> Result<(), String> {
    let circuit = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or("submit needs a circuit (file or gen:SPEC) before the flags")?
        .clone();
    // Fail bad circuits here, not in a worker three retries deep.
    let _ = load(&circuit)?;
    let dir = PathBuf::from(flag_value(args, "--dir").ok_or("submit needs --dir <dir>")?);
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut journal = Journal::open(&dir.join("journal.jsonl")).map_err(|e| e.to_string())?;
    let id = match flag_value(args, "--id") {
        Some(id) => id,
        None => format!("job{}", journal.ledger().job_ids().len() + 1),
    };
    if journal.ledger().get(&id).is_some() {
        println!("job {id} is already journaled (ids are first-wins)");
        return Ok(());
    }
    let mut spec = JobSpec::new(&id, &circuit);
    if let Some(e) = flag_value(args, "--engine") {
        spec.engine = e.to_ascii_lowercase();
    }
    if let Some(r) = flag_value(args, "--repr") {
        spec.repr = r.to_ascii_lowercase();
    }
    let engine = EngineKind::parse(&spec.engine)
        .ok_or_else(|| format!("unknown engine `{}`", spec.engine))?;
    let repr = ReprKind::parse(&spec.repr)
        .ok_or_else(|| format!("unknown representation `{}`", spec.repr))?;
    if !engine.supported_reprs().contains(&repr) {
        return Err(format!(
            "engine {} cannot drive representation {}",
            engine.label(),
            repr.label()
        ));
    }
    if let Some(o) = flag_value(args, "--order") {
        parse_order_token(&o)?;
        spec.order = o;
    }
    if let Some(p) = flag_value(args, "--priority") {
        spec.priority = p.parse().map_err(|e| format!("bad --priority: {e}"))?;
    }
    if let Some(n) = flag_value(args, "--node-limit") {
        spec.node_limit = Some(n.parse().map_err(|e| format!("bad --node-limit: {e}"))?);
    }
    if let Some(t) = flag_value(args, "--time-limit") {
        spec.time_limit_secs = Some(t.parse().map_err(|e| format!("bad --time-limit: {e}"))?);
    }
    if let Some(n) = flag_value(args, "--checkpoint-every") {
        spec.checkpoint_every = n
            .parse()
            .map_err(|e| format!("bad --checkpoint-every: {e}"))?;
        if spec.checkpoint_every == 0 {
            return Err("--checkpoint-every must be at least 1".into());
        }
    }
    if let Some(f) = flag_value(args, "--fault") {
        spec.fault = Some(f);
        if spec.kill_at_iteration().is_none() {
            return Err("bad --fault (expected kill@K)".into());
        }
    }
    journal
        .append(&id, "submitted", vec![("spec", spec.to_json())])
        .map_err(|e| e.to_string())?;
    println!(
        "submitted job {id}: {} ({} × {}, order {}, priority {})",
        circuit,
        engine.label(),
        repr.label(),
        spec.order,
        spec.priority
    );
    Ok(())
}

/// `bfvr audit`: run the selected engines with a per-iteration observer
/// that feeds every intermediate set — and each engine's final reached
/// set — through the full `bfvr-audit` pass battery, then print the
/// findings compiler-style, sorted by severity then pass. Exits nonzero
/// iff any error-severity finding was produced.
fn cmd_audit(args: &[String]) -> Result<(), String> {
    let net = load(args.get(1).ok_or("audit needs a file")?)?;
    let order = parse_order(args)?;
    let base_opts = parse_opts(args)?;
    let engines = parse_engines(args, &EngineKind::all())?;
    let reprs = parse_reprs(args)?;
    let lanes = build_lanes(&engines, reprs.as_deref())?;
    let report = Rc::new(RefCell::new(Report::new()));
    let inconclusive = Rc::new(RefCell::new(0usize));

    for lane in lanes {
        let (mut m, fsm) = EncodedFsm::encode(&net, order).map_err(|e| e.to_string())?;
        let mut opts = base_opts.clone();
        let sink = Rc::clone(&report);
        let skipped = Rc::clone(&inconclusive);
        opts.observer = Some(Rc::new(move |m, fsm, view| {
            // Zonotope lanes over-approximate by design; the exactness
            // invariants the pass battery checks do not apply.
            if matches!(view.set, SetView::Zonotope { .. }) {
                return;
            }
            let space = fsm.space();
            let scope = format!(
                "{}/iter[{}]",
                lane_label(view.engine, view.repr),
                view.iteration
            );
            // The audit's own scratch work must not count against the
            // engine's resource budget: suspend limits, audit, restore.
            // A resource failure inside the audit (possible only under
            // injected faults) makes that audit inconclusive, not failed.
            let node_limit = m.node_limit();
            let deadline = m.deadline();
            m.clear_node_limit();
            m.set_deadline(None);
            let restore = |m: &mut bfvr::bdd::BddManager| {
                match node_limit {
                    Some(n) => m.set_node_limit(n),
                    None => m.clear_node_limit(),
                }
                m.set_deadline(deadline);
            };
            // Pin for a χ derived from a lane-private representation
            // (ZDD): keeps it alive across the passes' collections.
            let _chi_guard;
            let targets = match view.set {
                SetView::Chi { reached, .. } => AuditTargets::for_chi(&space, reached),
                SetView::Vector { reached, .. } => AuditTargets::for_bfv(&space, reached),
                SetView::Cdec { reached, .. } => AuditTargets::for_cdec(&space, reached),
                SetView::Zdd { store, reached, .. } => {
                    // Audit the lane through the production ZDD → χ
                    // converter. A conversion failure is possible only
                    // under injected faults: inconclusive, skip.
                    let Ok(chi) = bfvr::bdd::bdd_from_zdd(m, store, reached, space.vars()) else {
                        *skipped.borrow_mut() += 1;
                        restore(m);
                        return;
                    };
                    _chi_guard = m.func(chi);
                    // Sweep the conversion's scratch so the leak pass sees
                    // only what the engine itself left live.
                    let mut roots = view.roots.to_vec();
                    roots.push(chi);
                    m.collect_garbage(&roots);
                    AuditTargets::for_chi(&space, chi)
                }
                SetView::Zonotope { .. } => unreachable!("handled above"),
            }
            .with_leak_roots(view.roots);
            if run_passes(m, &targets, &scope, &mut sink.borrow_mut()).is_err() {
                *skipped.borrow_mut() += 1;
            }
            restore(m);
        }));
        let r = run_repr(lane.engine, lane.repr, &mut m, &fsm, &opts);
        // Final audit of the engine's end state, through the χ the result
        // carries (also exercising the χ→BFV converter one more time).
        // Over-approximating lanes carry a χ of the *hull*, which fails
        // exactness passes by construction — skip them.
        if !r.over_approx {
            if let Some(chi) = &r.reached_chi {
                let space = fsm.space();
                let scope = format!("{}/final", lane.label());
                run_passes(
                    &mut m,
                    &AuditTargets::for_chi(&space, chi.bdd()),
                    &scope,
                    &mut report.borrow_mut(),
                )
                .map_err(|e| format!("{scope}: audit aborted: {e}"))?;
            }
        }
        println!(
            "{:10} {:>6} {:>5} iteration(s), {} state(s), audited",
            lane_cell(lane, &base_opts),
            r.outcome.label(),
            r.iterations,
            states_cell(r.reached_states, r.over_approx),
        );
    }

    if args.iter().any(|a| a == "--selftest") {
        run_selftest(&net, order)?;
    }

    let report = report.borrow();
    let inconclusive = *inconclusive.borrow();
    for f in report.sorted() {
        println!("{f}");
    }
    if inconclusive > 0 {
        println!("note: {inconclusive} iteration audit(s) were inconclusive (resource-limited)");
    }
    println!(
        "audit: {} finding(s) — {} error(s), {} warning(s), {} note(s)",
        report.len(),
        report.count_at(Severity::Error),
        report.count_at(Severity::Warning),
        report.count_at(Severity::Info),
    );
    if report.has_errors() {
        return Err("audit found error-severity findings".into());
    }
    Ok(())
}

/// `bfvr audit --selftest`: the mutation harness, seeded with the
/// circuit's own reached set (converted to a canonical vector) so the
/// corruptions act on realistic structure.
fn run_selftest(net: &Netlist, order: OrderHeuristic) -> Result<(), String> {
    let (mut m, fsm) = EncodedFsm::encode(net, order).map_err(|e| e.to_string())?;
    let r = run_engine(EngineKind::Bfv, &mut m, &fsm, &ReachOptions::default());
    let chi = r
        .reached_chi
        .as_ref()
        .ok_or("self-test: reachability produced no reached set")?;
    let space = fsm.space();
    let clean = bfvr::bfv::convert::from_characteristic(&mut m, &space, chi.bdd())
        .map_err(|e| e.to_string())?
        .ok_or("self-test: empty reached set")?;
    let outcomes = run_mutations(&mut m, &space, &clean).map_err(|e| e.to_string())?;
    println!("mutation self-test over {}'s reached set:", net.name());
    let mut undetected = 0usize;
    for o in &outcomes {
        println!(
            "  {:22} -> {} by {}{} ({} finding(s))",
            o.label,
            if o.fired { "detected" } else { "NOT DETECTED" },
            o.expected.id(),
            if o.with_witness { ", with witness" } else { "" },
            o.findings,
        );
        if !o.fired {
            undetected += 1;
        }
    }
    if undetected > 0 {
        return Err(format!(
            "self-test: {undetected} corruption(s) went undetected"
        ));
    }
    Ok(())
}

/// `bfvr lint`: run the `bfvr-nlint` pass battery over the netlist and
/// print the findings compiler-style, sorted by severity then pass.
/// `--fix` writes the lint-gated simplification as `.bench`; `--selftest`
/// runs the netlist mutation harness. Exits nonzero iff any
/// error-severity finding (mirroring `bfvr audit`).
fn cmd_lint(args: &[String]) -> Result<(), String> {
    let net = load(args.get(1).ok_or("lint needs a file")?)?;
    let report = bfvr::nlint::run_passes(&net);
    for f in report.sorted() {
        println!("{f}");
    }
    println!(
        "lint: {} finding(s) — {} error(s), {} warning(s), {} note(s)",
        report.len(),
        report.count_at(bfvr::nlint::Severity::Error),
        report.count_at(bfvr::nlint::Severity::Warning),
        report.count_at(bfvr::nlint::Severity::Info),
    );
    let prune = args.iter().any(|a| a == "--prune");
    match flag_value(args, "--fix") {
        None if prune => return Err("--prune requires --fix".into()),
        None => {}
        Some(out) => {
            let s = bfvr::nlint::simplify_with(
                &net,
                bfvr::nlint::SimplifyOptions { prune_dead: prune },
            )
            .map_err(|e| e.to_string())?;
            let before = net.stats();
            let after = s.netlist.stats();
            println!(
                "fix: {} -> {} ({} latch(es) folded, {} dead latch(es) dropped, \
                 {} duplicate gate(s) merged, {} gate(s) pruned)",
                before,
                after,
                s.folded_latches.len(),
                s.dead_latches.len(),
                s.merged_gates,
                s.pruned_gates,
            );
            if !s.dead_latches.is_empty() {
                println!(
                    "note: dead-latch pruning projects the state space — reached-state \
                     counts are no longer comparable to the original"
                );
            }
            let text = bench::write(&s.netlist).map_err(|e| e.to_string())?;
            std::fs::write(&out, text).map_err(|e| format!("{out}: {e}"))?;
            println!("fix: wrote {out}");
        }
    }
    if args.iter().any(|a| a == "--selftest") {
        lint_selftest(&net)?;
    }
    if report.has_errors() {
        return Err("lint found error-severity findings".into());
    }
    Ok(())
}

/// `bfvr lint --selftest`: nine seeded netlist corruptions, each of
/// which must be diagnosed by its intended pass (the netlist-level
/// mirror of `bfvr audit --selftest`).
fn lint_selftest(net: &Netlist) -> Result<(), String> {
    let outcomes = bfvr::nlint::run_mutations(net).map_err(|e| e.to_string())?;
    println!("netlist mutation self-test on {}:", net.name());
    let mut undetected = 0usize;
    for o in &outcomes {
        println!(
            "  {:16} -> {} by {}{} ({} finding(s))",
            o.label,
            if o.fired { "detected" } else { "NOT DETECTED" },
            o.expected.id(),
            if o.with_witness { ", with witness" } else { "" },
            o.findings,
        );
        if !o.fired {
            undetected += 1;
        }
    }
    if undetected > 0 {
        return Err(format!(
            "lint self-test: {undetected} corruption(s) went undetected"
        ));
    }
    Ok(())
}

/// Parses a latch-order cube string (`1`, `0`, `x`/`-`) into component
/// order for the given encoding.
fn parse_cube(cube: &str, fsm: &EncodedFsm) -> Result<Vec<Option<bool>>, String> {
    let bits: Vec<Option<bool>> = cube
        .chars()
        .map(|c| match c {
            '1' => Ok(Some(true)),
            '0' => Ok(Some(false)),
            'x' | 'X' | '-' => Ok(None),
            other => Err(format!("bad cube character `{other}`")),
        })
        .collect::<Result<_, _>>()?;
    if bits.len() != fsm.num_latches() {
        return Err(format!(
            "cube has {} bits but the circuit has {} latches",
            bits.len(),
            fsm.num_latches()
        ));
    }
    Ok((0..fsm.num_latches())
        .map(|c| bits[fsm.latch_of_component(c)])
        .collect())
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let net = load(args.get(1).ok_or("check needs a file")?)?;
    let cube = flag_value(args, "--bad").ok_or("check needs --bad <cube>")?;
    let opts = parse_opts(args)?;
    let (mut m, fsm) =
        EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).map_err(|e| e.to_string())?;
    let pattern = parse_cube(&cube, &fsm)?;
    let space = fsm.space();
    let bad = StateSet::from_cube(&m, &space, &pattern).map_err(|e| e.to_string())?;
    match check_invariant(&mut m, &fsm, &bad, &opts).map_err(|e| e.to_string())? {
        CheckResult::Holds { iterations } => {
            println!("HOLDS: no state matching {cube} is reachable ({iterations} images)");
        }
        CheckResult::Violated { depth, witness } => {
            let latch_bits = to_latch_order(&fsm, &witness);
            println!("VIOLATED at depth {depth}: state {}", bits_str(&latch_bits));
            return Err("invariant violated".into());
        }
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let net = load(args.get(1).ok_or("trace needs a file")?)?;
    let cube = flag_value(args, "--to").ok_or("trace needs --to <cube>")?;
    let opts = parse_opts(args)?;
    let (mut m, fsm) =
        EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).map_err(|e| e.to_string())?;
    let pattern = parse_cube(&cube, &fsm)?;
    let space = fsm.space();
    let target = StateSet::from_cube(&m, &space, &pattern).map_err(|e| e.to_string())?;
    match find_trace(&mut m, &fsm, &target, &opts).map_err(|e| e.to_string())? {
        None => {
            println!("UNREACHABLE: no state matching {cube} is reachable");
        }
        Some(trace) => {
            println!("reached {cube} in {} steps:", trace.depth());
            let input_names: Vec<&str> = net.inputs().iter().map(|&s| net.signal_name(s)).collect();
            println!(
                "  state {}",
                bits_str(&to_latch_order(&fsm, &trace.states[0]))
            );
            for (i, inp) in trace.inputs.iter().enumerate() {
                let pairs: Vec<String> = input_names
                    .iter()
                    .zip(inp)
                    .map(|(n, &b)| format!("{n}={}", u8::from(b)))
                    .collect();
                println!("  step {:3}: {}", i + 1, pairs.join(" "));
                println!(
                    "  state {}",
                    bits_str(&to_latch_order(&fsm, &trace.states[i + 1]))
                );
            }
        }
    }
    Ok(())
}

/// `bfvr report`: render a `--trace-out` JSONL trace as per-engine
/// timeline tables. Any schema violation (bad line, missing or
/// unsupported `meta` header) exits nonzero, so CI can use the command
/// as a trace validator.
fn cmd_report(args: &[String]) -> Result<(), String> {
    let path = args.get(1).ok_or("report needs a trace file")?;
    let format = match flag_value(args, "--format").as_deref() {
        None | Some("text") => Format::Text,
        Some("md" | "markdown") => Format::Markdown,
        Some(other) => return Err(format!("unknown format `{other}` (expected text|md)")),
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let events = bfvr::obs::parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    // Reports get piped into pagers and `head`; a closed pipe is not an
    // error worth panicking over.
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(bfvr::obs::render(&events, format).as_bytes());
    Ok(())
}

fn to_latch_order(fsm: &EncodedFsm, comp_state: &[bool]) -> Vec<bool> {
    let mut latch = vec![false; comp_state.len()];
    for (c, &b) in comp_state.iter().enumerate() {
        latch[fsm.latch_of_component(c)] = b;
    }
    latch
}

fn bits_str(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
