//! The ordering axis end to end: static orders (declaration — the
//! paper's `S2` — against the structural COI/FORCE orders from
//! `bfvr-nlint` support analysis) crossed with dynamic sifting
//! `{off, sift}` on the order-sensitive monolithic χ engine.
//!
//! Each cell of the static × dynamic matrix runs as **interleaved
//! off/sift pairs** on fresh managers — the drift-proof protocol of
//! `BENCH_frozen_apply.json`: both sides of a pair run back-to-back so
//! machine drift cancels in the ratio, every pair asserts identical
//! reached-state and iteration counts (sifting is a graph-shape change,
//! never a semantic one), and the reported time ratio is the median
//! over pairs. Peak live nodes are deterministic, so the peak columns
//! are exact; they are the headline — on the datapath families
//! (`mask*`, `load*`) declaration order scatters the decode cone and
//! one sift pass cuts the peak by well over the 20% acceptance bar,
//! while under a structural order that already keeps supports adjacent
//! the trigger often never fires (0 passes, ±0%): sifting is the
//! escape hatch for a bad static choice, not a tax on a good one.
//!
//! ```sh
//! cargo run --release --example ordering_study
//! ```
//!
//! Measured tables are recorded in `EXPERIMENTS.md` (§ structural
//! static orders, § dynamic sifting) and `BENCH_ordering.json`.

use bfvr::netlist::{generators, Netlist};
use bfvr::reach::{run_repr, EngineKind, Outcome, ReachOptions, ReachResult, ReprKind};
use bfvr::sim::{EncodedFsm, OrderHeuristic};

const ORDERS: [OrderHeuristic; 4] = [
    OrderHeuristic::Declaration,
    // The paper's D row — deliberately bad, the regime sifting exists for.
    OrderHeuristic::Reversed,
    OrderHeuristic::Coi,
    OrderHeuristic::Force,
];

/// Interleaved off/sift pairs per cell; the time ratio is their median.
const PAIRS: usize = 3;

fn suite() -> Vec<(&'static str, Netlist)> {
    vec![
        // Datapath families: wide pure-input decode cones that
        // declaration order scatters — the sift showcase.
        ("mask10", generators::masked_accumulator(10)),
        ("load12", generators::loadable_register(12)),
        // Coupled-counter control logic; moderate order sensitivity.
        ("queue4", generators::queue_controller(4)),
        // XNOR equality cones (the static-order showcase of PR 8).
        ("pair8", generators::paired_registers(8)),
        // Contrast row: order-friendly one-hot structure.
        ("johnson12", generators::johnson(12)),
    ]
}

fn run(net: &Netlist, h: OrderHeuristic, sift: bool) -> Result<ReachResult, String> {
    let (mut m, fsm) = EncodedFsm::encode(net, h).map_err(|e| e.to_string())?;
    let opts = ReachOptions {
        time_limit: Some(std::time::Duration::from_secs(60)),
        node_limit: Some(4_000_000),
        sift,
        // Fire eagerly: the study's circuits are sized for the sweep,
        // not for the default 2.0 growth multiple of hour-long runs.
        sift_trigger: 1.2,
        ..Default::default()
    };
    Ok(run_repr(
        EngineKind::Monolithic,
        ReprKind::Chi,
        &mut m,
        &fsm,
        &opts,
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Monolithic χ engine: static order × dynamic sifting (trigger 1.2)");
    println!("{PAIRS} interleaved off/sift pairs per cell; time ratio = median over pairs");
    println!();
    println!(
        "| circuit    | order | states | passes | peak off | peak sift | Δpeak | sift/off time |"
    );
    println!(
        "|------------|-------|--------|--------|----------|-----------|-------|---------------|"
    );
    for (name, net) in suite() {
        for h in ORDERS {
            let mut ratios = Vec::with_capacity(PAIRS);
            let mut cell: Option<(ReachResult, ReachResult)> = None;
            for _ in 0..PAIRS {
                let off = run(&net, h, false)?;
                let sift = run(&net, h, true)?;
                assert_eq!(off.outcome, Outcome::FixedPoint, "{name}/{h:?} off");
                assert_eq!(sift.outcome, Outcome::FixedPoint, "{name}/{h:?} sift");
                // The drift-proof pair doubles as a differential test.
                assert_eq!(
                    off.reached_states, sift.reached_states,
                    "{name}/{h:?}: sifting changed the reached count"
                );
                assert_eq!(
                    off.iterations, sift.iterations,
                    "{name}/{h:?}: sifting changed the iteration count"
                );
                if let Some((o, s)) = &cell {
                    assert_eq!(
                        o.peak_nodes, off.peak_nodes,
                        "{name}/{h:?}: off peak drifted"
                    );
                    assert_eq!(
                        s.peak_nodes, sift.peak_nodes,
                        "{name}/{h:?}: sift peak drifted"
                    );
                }
                ratios.push(sift.elapsed.as_secs_f64() / off.elapsed.as_secs_f64().max(1e-9));
                cell = Some((off, sift));
            }
            ratios.sort_by(|a, b| a.total_cmp(b));
            let median = ratios[ratios.len() / 2];
            let (off, sift) = cell.ok_or("no pairs ran")?;
            let states = off.reached_states.map_or("-".into(), |s| format!("{s}"));
            let dpeak = 100.0 * (sift.peak_nodes as f64 / off.peak_nodes.max(1) as f64 - 1.0);
            println!(
                "| {:10} | {:5} | {:>6} | {:>6} | {:>8} | {:>9} | {:>4.0}% | {:>12.2}x |",
                name,
                h.label(),
                states,
                sift.reorders,
                off.peak_nodes,
                sift.peak_nodes,
                dpeak,
                median,
            );
        }
    }
    println!();
    println!("Reached-state counts are order- and sift-invariant (asserted per pair;");
    println!("the least fixed point is unique). Only peak/time move. Zero passes");
    println!("means the trigger never fired: the static order kept live nodes under");
    println!("max(2048, 1.2 x baseline), so sifting cost nothing.");
    Ok(())
}
