//! The paper's §3 variable-ordering argument, reproduced live: for the
//! reachable set `χ = ⋀ᵢ (aᵢ ↔ bᵢ)` of the twin-register circuit, the
//! characteristic function needs related variables adjacent, while the
//! Boolean functional vector is small under *any* order because the
//! dependency `bᵢ = aᵢ` is factored out by the representation.
//!
//! ```sh
//! cargo run --release --example ordering_study
//! ```

use bfvr::bfv::StateSet;
use bfvr::netlist::generators;
use bfvr::reach::{reach_bfv, ReachOptions};
use bfvr::sim::{EncodedFsm, OrderHeuristic, Slot};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("pairs |  order       χ nodes   BFV shared nodes");
    for p in [4u32, 6, 8, 10, 12] {
        let net = generators::paired_registers(p);
        // Two slot orders over the same circuit:
        //  - interleaved: a0 b0 a1 b1 …  (good for χ)
        //  - separated:   a0 a1 … b0 b1 …  (exponential for χ)
        let interleaved: Vec<Slot> = (0..p as usize)
            .flat_map(|i| [Slot::Latch(i), Slot::Latch(p as usize + i)])
            .chain((0..p as usize).map(Slot::Input))
            .collect();
        let separated: Vec<Slot> = (0..2 * p as usize)
            .map(Slot::Latch)
            .chain((0..p as usize).map(Slot::Input))
            .collect();
        for (label, slots) in [("paired", interleaved), ("split", separated)] {
            let (mut m, fsm) = EncodedFsm::encode_with_slots(&net, &slots)?;
            let r = reach_bfv(&mut m, &fsm, &ReachOptions::default());
            let space = fsm.space();
            let chi = r.reached_chi.expect("traversal completed").bdd();
            let set = StateSet::from_characteristic(&mut m, &space, chi)?;
            let chi_nodes = m.size(chi);
            let bfv_nodes = set.as_bfv().expect("non-empty").shared_size(&m);
            println!("{p:5} |  {label:10} {chi_nodes:8}   {bfv_nodes:8}");
        }
    }
    println!();
    println!("χ under the split order grows exponentially with the pair count;");
    println!("the functional vector stays linear under both orders (paper §3).");

    // And the Random/hostile orders of Table 2, on a mid-size instance:
    println!();
    println!("reachability of pair8 across order heuristics (BFV engine):");
    let net = generators::paired_registers(8);
    for h in [
        OrderHeuristic::DfsFanin,
        OrderHeuristic::Declaration,
        OrderHeuristic::Reversed,
        OrderHeuristic::Random(7),
    ] {
        let (mut m, fsm) = EncodedFsm::encode(&net, h)?;
        let r = reach_bfv(&mut m, &fsm, &ReachOptions::default());
        println!(
            "  order {:4}  states={:6}  peak={:7}  time={:.1} ms",
            h.label(),
            r.reached_states.unwrap_or(f64::NAN),
            r.peak_nodes,
            r.elapsed.as_secs_f64() * 1e3
        );
    }
    Ok(())
}
