//! Static variable orders head-to-head: declaration order (the paper's
//! `S2`) against the two structural orders derived from `bfvr-nlint`
//! support analysis — COI interleaving and FORCE (Aloul–Markov–Sakallah
//! center-of-gravity placement).
//!
//! The sweep runs the BFV engine over the XNOR-heavy generator circuits
//! of `BENCH_core_refactor.json` (`lfsr*` with XNOR feedback taps,
//! `pair*` with XNOR equality cones) plus the mux-structured circuits as
//! contrast, reporting per order the peak live BDD nodes of the whole
//! traversal and the shared size of the final functional vector. XNOR
//! cones are where static orders matter most: an XNOR chain's BDD is
//! linear when its support is adjacent and blows up when the support is
//! scattered, which is exactly what declaration order does to feedback
//! taps.
//!
//! ```sh
//! cargo run --release --example ordering_study
//! ```
//!
//! Measured deltas are recorded in `EXPERIMENTS.md` (§ ordering study).

use bfvr::netlist::{generators, Netlist};
use bfvr::reach::{reach_bfv, Outcome, ReachOptions};
use bfvr::sim::{EncodedFsm, OrderHeuristic};

const ORDERS: [OrderHeuristic; 3] = [
    OrderHeuristic::Declaration,
    OrderHeuristic::Coi,
    OrderHeuristic::Force,
];

fn suite() -> Vec<(&'static str, Netlist)> {
    vec![
        // XNOR-heavy: feedback taps / equality cones.
        ("lfsr10", generators::lfsr(10)),
        ("lfsr12", generators::lfsr(12)),
        ("pair8", generators::paired_registers(8)),
        ("pair10", generators::paired_registers(10)),
        // Mux-structured contrast rows.
        ("johnson12", generators::johnson(12)),
        ("queue4", generators::queue_controller(4)),
        ("rot12", generators::rotator(12)),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let limits = ReachOptions {
        time_limit: Some(std::time::Duration::from_secs(30)),
        node_limit: Some(4_000_000),
        ..Default::default()
    };
    println!("BFV reachability under decl / coi / force static orders");
    println!();
    println!("| circuit    | order | states | peak live | BFV nodes | time(ms) |");
    println!("|------------|-------|--------|-----------|-----------|----------|");
    for (name, net) in suite() {
        let mut decl_peak = None;
        for h in ORDERS {
            let (mut m, fsm) = EncodedFsm::encode(&net, h)?;
            let r = reach_bfv(&mut m, &fsm, &limits);
            let states = match r.outcome {
                Outcome::FixedPoint => r.reached_states.map_or("-".into(), |s| format!("{s}")),
                other => other.label().to_string(),
            };
            let bfv_nodes = r.representation_nodes.map_or("-".into(), |n| n.to_string());
            // Peak relative to this circuit's declaration-order row, the
            // delta EXPERIMENTS.md records.
            let delta = match (h, decl_peak) {
                (OrderHeuristic::Declaration, _) => {
                    decl_peak = Some(r.peak_nodes);
                    String::new()
                }
                (_, Some(base)) if base > 0 => {
                    format!(
                        " ({:+.0}%)",
                        100.0 * (r.peak_nodes as f64 / base as f64 - 1.0)
                    )
                }
                _ => String::new(),
            };
            println!(
                "| {:10} | {:5} | {:>6} | {:>9} | {:>9} | {:>8.1} |{delta}",
                name,
                h.label(),
                states,
                r.peak_nodes,
                bfv_nodes,
                r.elapsed.as_secs_f64() * 1e3,
            );
        }
    }
    println!();
    println!("Reached-state counts are order-invariant (the fixed point is unique);");
    println!("only the peak/size/time columns move. On the XNOR-heavy rows the");
    println!("support-driven orders keep each feedback cone's variables adjacent.");
    Ok(())
}
