//! Sequential equivalence checking on a product machine: the classic
//! application of symbolic state traversal (and of the Coudert–Berthet–
//! Madre line of work the paper builds on).
//!
//! Two implementations of an 8-stage shift register — one storing the
//! bits directly, one storing them *complemented* with inverted reset
//! values — are combined into a product machine with a miter output. The
//! machines are equivalent iff the miter is 1 on every reachable state
//! under every input, which we decide with BFV reachability plus symbolic
//! output evaluation.
//!
//! ```sh
//! cargo run --release --example seq_equivalence
//! ```

use bfvr::netlist::{generators, product, GateKind, Netlist, NetlistBuilder};
use bfvr::reach::{reach_bfv, Outcome, ReachOptions};
use bfvr::sim::{simulate_outputs, EncodedFsm, OrderHeuristic};

/// A shift register that stores complemented bits internally:
/// `s'_0 = ¬d`, `s'_i = s_{i-1}`, output `¬s_{n-1}`; reset all-ones.
/// Observationally identical to `generators::shift_register(n)`.
fn complemented_shift_register(n: u32) -> Netlist {
    let mut b = NetlistBuilder::new(format!("nshift{n}"));
    b.input("d").expect("fresh");
    for i in 0..n {
        b.latch(format!("s{i}"), format!("ns{i}"), true)
            .expect("fresh");
    }
    b.gate("ns0", GateKind::Not, &["d"]).expect("fresh");
    for i in 1..n {
        b.gate(
            format!("ns{i}"),
            GateKind::Buf,
            &[format!("s{}", i - 1).as_str()],
        )
        .expect("fresh");
    }
    b.gate("serout", GateKind::Not, &[format!("s{}", n - 1).as_str()])
        .expect("fresh");
    b.output("serout");
    b.finish().expect("valid by construction")
}

fn check_equivalence(a: &Netlist, b: &Netlist) -> Result<bool, Box<dyn std::error::Error>> {
    let prod = product::product_miter(a, b)?;
    let (mut m, fsm) = EncodedFsm::encode(&prod, OrderHeuristic::DfsFanin)?;
    let r = reach_bfv(&mut m, &fsm, &ReachOptions::default());
    assert_eq!(r.outcome, Outcome::FixedPoint, "traversal must complete");
    // Evaluate the miter outputs over the reached set: equivalence holds
    // iff no reachable state under any input drives a miter to 0.
    let space = fsm.space();
    let reached = bfvr::bfv::StateSet::from_characteristic(
        &mut m,
        &space,
        r.reached_chi.expect("completed").bdd(),
    )?;
    let outs = simulate_outputs(&mut m, &fsm, reached.as_bfv().expect("non-empty"))?;
    println!(
        "  product machine: {} latches, {} reachable states, {} iterations",
        prod.latches().len(),
        r.reached_states.unwrap_or(f64::NAN),
        r.iterations
    );
    Ok(outs.iter().all(|&o| o.is_true()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8;
    println!("shift{n} vs complemented-shift{n}:");
    let a = generators::shift_register(n);
    let b = complemented_shift_register(n);
    let equivalent = check_equivalence(&a, &b)?;
    println!(
        "  => {}",
        if equivalent {
            "EQUIVALENT"
        } else {
            "NOT equivalent"
        }
    );
    assert!(equivalent);

    println!();
    println!("shift{n} vs a buggy variant (stage 3 wired to stage 1):");
    let mut buggy = NetlistBuilder::new("buggy");
    buggy.input("d")?;
    for i in 0..n {
        buggy.latch(format!("s{i}"), format!("ns{i}"), false)?;
    }
    buggy.gate("ns0", GateKind::Buf, &["d"])?;
    for i in 1..n {
        let src = if i == 3 { 1 } else { i - 1 }; // the bug
        buggy.gate(
            format!("ns{i}"),
            GateKind::Buf,
            &[format!("s{src}").as_str()],
        )?;
    }
    buggy.gate("serout", GateKind::Buf, &[format!("s{}", n - 1).as_str()])?;
    buggy.output("serout");
    let buggy = buggy.finish()?;
    let equivalent = check_equivalence(&a, &buggy)?;
    println!(
        "  => {}",
        if equivalent {
            "EQUIVALENT"
        } else {
            "NOT equivalent"
        }
    );
    assert!(!equivalent);
    println!();
    println!("both verdicts match expectation");
    Ok(())
}
