//! STE-flavored datapath check with the ternary symbolic simulator: prove
//! that a shift register delivers any injected symbolic value unchanged
//! after exactly `n` cycles, *with every other cycle's data left unknown*
//! (the X-abstraction that makes trajectory evaluation scale).
//!
//! This is the verification style the paper's §1 cites as the established
//! consumer of Boolean functional vectors.
//!
//! ```sh
//! cargo run --release --example ste_datapath
//! ```

use bfvr::bdd::{BddManager, Var};
use bfvr::netlist::generators;
use bfvr::sim::ternary::{TernValue, TernarySimulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 12u32;
    let net = generators::shift_register(n);
    let sim = TernarySimulator::new(&net)?;
    let mut m = BddManager::new(1);
    let d = m.var(Var(0));
    let injected = TernValue::from_boolean(&mut m, d)?;

    // Antecedent: at cycle 0 the input carries the symbolic value `d`;
    // every other cycle's input is X; the initial state is entirely X.
    let mut state = sim.unknown_state();
    let mut outputs = Vec::new();
    for cycle in 0..=n {
        let input = if cycle == 0 { injected } else { TernValue::X };
        let (next, outs) = sim.step(&mut m, &state, &[input])?;
        state = next;
        outputs.push(outs[0]);
    }

    // Consequent: after n+1 cycles the serial output equals `d` (it was
    // sampled into stage 0 at cycle 0 and shifted n-1 times; the output
    // reads the last stage combinationally).
    let final_out = outputs[n as usize];
    println!("cycles simulated : {}", n + 1);
    println!(
        "output rails     : hi = {}, lo = {}",
        if final_out.hi == d { "d" } else { "?" },
        {
            let nd = m.not(d);
            if final_out.lo == nd {
                "¬d"
            } else {
                "?"
            }
        }
    );
    assert_eq!(final_out.hi, d, "output must equal the injected symbol");
    assert!(final_out.is_definite(&mut m)?, "output must be X-free");

    // Every *earlier* output is X under the all-X start — the abstraction
    // is as weak as possible everywhere except where the property needs it.
    let known_early = outputs[..n as usize]
        .iter()
        .filter(|o| o.hi != bfvr::bdd::Bdd::FALSE || o.lo != bfvr::bdd::Bdd::FALSE)
        .count();
    println!("early outputs definite: {known_early} of {n} (expected 0)");
    assert_eq!(known_early, 0);

    println!("STE check PASSED: out[t+{n}] = in[t] over an unknown background");
    Ok(())
}
