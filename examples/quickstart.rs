//! Quickstart: the paper's Table 1 set, built and manipulated with
//! Boolean functional vectors.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use bfvr::bdd::{BddManager, Var};
use bfvr::bfv::{Space, StateSet};

fn bits(s: &str) -> Vec<bool> {
    s.chars().map(|c| c == '1').collect()
}

fn show(s: &StateSet, m: &mut BddManager, space: &Space) -> String {
    let mut names: Vec<String> = s
        .members(m, space)
        .expect("enumeration fits in memory")
        .iter()
        .map(|p| p.iter().map(|&b| if b { '1' } else { '0' }).collect())
        .collect();
    names.sort();
    format!("{{{}}}", names.join(", "))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three state bits, one choice variable per bit.
    let mut m = BddManager::new(3);
    let space = Space::contiguous(3);

    // The paper's running example: S = {000,001,010,011,100,101},
    // i.e. "the first two bits cannot both be 1".
    let points: Vec<Vec<bool>> = ["000", "001", "010", "011", "100", "101"]
        .iter()
        .map(|s| bits(s))
        .collect();
    let s = StateSet::from_points(&mut m, &space, &points)?;

    println!("S = {}", show(&s, &mut m, &space));
    println!("|S| = {}", s.len(&mut m, &space)?);

    // The canonical vector is exactly the paper's (v1, ¬v1∧v2, v3).
    let f = s.as_bfv().expect("non-empty");
    for (i, &c) in f.components().iter().enumerate() {
        println!("f{} = BDD of {} node(s)", i + 1, m.size(c));
    }
    assert_eq!(f.component(0), m.var(Var(0)));

    // Non-members map to the nearest member (Table 1): 110 → 100.
    let image = f.eval(&m, &space, &bits("110"))?;
    println!(
        "F(110) = {}",
        image
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect::<String>()
    );

    // Set algebra without ever building a characteristic function:
    let t = StateSet::from_points(&mut m, &space, &[bits("110"), bits("011")])?;
    let union = s.union(&mut m, &space, &t)?;
    let inter = s.intersect(&mut m, &space, &t)?;
    println!("S ∪ T = {}", show(&union, &mut m, &space));
    println!("S ∩ T = {}", show(&inter, &mut m, &space));

    // Membership is two component evaluations, no conversion:
    assert!(s.contains(&m, &space, &bits("101"))?);
    assert!(!s.contains(&m, &space, &bits("111"))?);
    println!("membership checks passed");
    Ok(())
}
