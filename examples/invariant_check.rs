//! Safety checking with the BFV model checker: verify the one-hot
//! invariant of a token rotator and find a real counterexample in a
//! counter — the "symbolic simulation based model checker" the paper's
//! conclusion calls for.
//!
//! ```sh
//! cargo run --release --example invariant_check
//! ```

use bfvr::bfv::StateSet;
use bfvr::netlist::generators;
use bfvr::reach::{check_invariant, CheckResult, ReachOptions};
use bfvr::sim::{EncodedFsm, OrderHeuristic};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Property 1: the rotator's token is never lost (all-zeros unreachable).
    let net = generators::rotator(8);
    let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin)?;
    let space = fsm.space();
    let token_lost = StateSet::singleton(&mut m, &space, &vec![false; space.len()])?;
    match check_invariant(&mut m, &fsm, &token_lost, &ReachOptions::default())? {
        CheckResult::Holds { iterations } => {
            println!("rot8: token-never-lost HOLDS (fixpoint after {iterations} images)");
        }
        CheckResult::Violated { depth, witness } => {
            println!("rot8: VIOLATED at depth {depth}: {witness:?}");
        }
    }

    // Property 2 (deliberately false): "the 6-bit counter never reaches 63".
    let net = generators::counter(6);
    let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin)?;
    let space = fsm.space();
    let all_ones = StateSet::singleton(&mut m, &space, &vec![true; space.len()])?;
    match check_invariant(&mut m, &fsm, &all_ones, &ReachOptions::default())? {
        CheckResult::Holds { .. } => println!("cnt6: unexpectedly holds?!"),
        CheckResult::Violated { depth, witness } => {
            let value: u64 = witness
                .iter()
                .enumerate()
                .map(|(c, &b)| {
                    let latch = fsm.latch_of_component(c);
                    (b as u64) << latch
                })
                .sum();
            println!("cnt6: counterexample at depth {depth}: counter value {value}");
            assert_eq!(depth, 63, "the counter takes exactly 63 steps to saturate");
        }
    }

    // Property 3: the FIFO controller's pointer invariant — encoded as
    // "count never exceeds capacity".
    let net = generators::queue_controller(3);
    let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin)?;
    let space = fsm.space();
    // Bad cube: the count's MSB (latch k + k = q3 at latch index 6) set
    // together with any lower count bit — an over-capacity count.
    let mut bad_any = StateSet::Empty;
    for low in 0..3usize {
        let mut pattern = vec![None; space.len()];
        #[allow(clippy::needless_range_loop)]
        for c in 0..space.len() {
            let l = fsm.latch_of_component(c);
            if l == 6 {
                pattern[c] = Some(true); // q3 (capacity bit)
            }
            if l == 3 + low {
                pattern[c] = Some(true); // q0/q1/q2
            }
        }
        let cube = StateSet::from_cube(&m, &space, &pattern)?;
        bad_any = bad_any.union(&mut m, &space, &cube)?;
    }
    match check_invariant(&mut m, &fsm, &bad_any, &ReachOptions::default())? {
        CheckResult::Holds { iterations } => {
            println!("queue3: count-within-capacity HOLDS ({iterations} images)");
        }
        CheckResult::Violated { depth, witness } => {
            println!("queue3: VIOLATED at depth {depth}: {witness:?}");
            std::process::exit(1);
        }
    }
    Ok(())
}
