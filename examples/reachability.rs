//! End-to-end reachability analysis: parse an ISCAS89 circuit, run all
//! five engines, and compare their answers and costs.
//!
//! ```sh
//! cargo run --release --example reachability [circuit]
//! ```
//!
//! `circuit` is a name from the standard suite (default: `s27`); run with
//! `list` to see the options.

use bfvr::netlist::generators;
use bfvr::reach::{run, EngineKind, ReachOptions};
use bfvr::sim::{EncodedFsm, OrderHeuristic};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "s27".to_string());
    let suite = generators::standard_suite();
    if which == "list" {
        for (name, net) in &suite {
            println!("{name:12} {}", net.stats());
        }
        return Ok(());
    }
    let net = suite
        .iter()
        .find(|(name, _)| *name == which)
        .map(|(_, n)| n.clone())
        .ok_or_else(|| format!("unknown circuit `{which}` (try `list`)"))?;
    println!("circuit {which}: {}", net.stats());

    let opts = ReachOptions {
        time_limit: Some(std::time::Duration::from_secs(60)),
        node_limit: Some(4_000_000),
        ..Default::default()
    };
    println!(
        "{:8} {:>6} {:>12} {:>6} {:>10} {:>10} {:>10}",
        "engine", "status", "states", "iters", "time(ms)", "conv(ms)", "peak nodes"
    );
    let mut last_chi = None;
    for kind in EngineKind::all() {
        // Fresh manager per engine so peak-node numbers are comparable.
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin)?;
        let r = run(kind, &mut m, &fsm, &opts);
        println!(
            "{:8} {:>6} {:>12} {:>6} {:>10.1} {:>10.1} {:>10}",
            kind.label(),
            r.outcome.label(),
            r.reached_states.map_or("-".to_string(), |s| format!("{s}")),
            r.iterations,
            r.elapsed.as_secs_f64() * 1e3,
            r.conversion_time.as_secs_f64() * 1e3,
            r.peak_nodes,
        );
        // All completed engines must count the same states.
        if let Some(states) = r.reached_states {
            if let Some(prev) = last_chi {
                assert_eq!(prev, states, "engines disagree on the reached count");
            }
            last_chi = Some(states);
        }
    }
    println!("all engines agree on the reachable-state count");
    Ok(())
}
