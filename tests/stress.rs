//! Robustness tests: cache starvation, interleaved engine runs in one
//! manager, and repeated GC pressure must never change any result.

use bfvr::netlist::generators;
use bfvr::reach::{reach_bfv, reach_iwls95, reach_monolithic, Outcome, ReachOptions};
use bfvr::sim::{EncodedFsm, OrderHeuristic};

/// A starved computed cache only affects speed, never results.
#[test]
fn tiny_cache_does_not_change_results() {
    let net = generators::queue_controller(3);
    let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
    let baseline = reach_bfv(&mut m, &fsm, &ReachOptions::default());
    m.set_cache_limit(64); // pathological: constant cache thrash
    let starved = reach_bfv(&mut m, &fsm, &ReachOptions::default());
    assert_eq!(baseline.reached_chi, starved.reached_chi);
    assert_eq!(baseline.iterations, starved.iterations);
    m.set_cache_limit(1 << 22);
}

/// Three engines interleaved twice each in one manager, with garbage
/// collections in between, must all agree and stay stable.
#[test]
fn interleaved_engines_share_a_manager() {
    let net = generators::johnson(8);
    let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::Declaration).unwrap();
    let mut results = Vec::new();
    for round in 0..2 {
        for which in 0..3 {
            let r = match which {
                0 => reach_bfv(&mut m, &fsm, &ReachOptions::default()),
                1 => reach_monolithic(&mut m, &fsm, &ReachOptions::default()),
                _ => reach_iwls95(&mut m, &fsm, &ReachOptions::default()),
            };
            assert_eq!(
                r.outcome,
                Outcome::FixedPoint,
                "round {round} engine {which}"
            );
            results.push(r);
            // Aggressive collection between runs (results hold RAII roots).
            m.collect_garbage(&[]);
        }
    }
    let first = results[0].reached_chi.clone().unwrap();
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.reached_chi.as_ref(), Some(&first), "result {i} diverged");
        assert_eq!(r.reached_states, Some(16.0));
    }
}

/// A run that hits the node ceiling mid-flight leaves the manager in a
/// state where a clean rerun still works — no poisoned caches or leaked
/// limits. Budgets that only used to fail because of dead intermediate
/// nodes now complete: the manager reclaims before reporting `M.O.`.
#[test]
fn memout_recovery_is_clean() {
    let net = generators::traffic_chain(3);
    let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
    for budget in [20usize, 100] {
        let limit = m.allocated() + budget;
        let r = reach_bfv(
            &mut m,
            &fsm,
            &ReachOptions {
                node_limit: Some(limit),
                ..Default::default()
            },
        );
        assert_eq!(
            r.outcome,
            Outcome::MemOut,
            "budget {budget} unexpectedly sufficed"
        );
        m.collect_garbage(&[]);
    }
    // 400 extra nodes used to mem-out; reclaim-before-fail collects the
    // dead intermediates and lets the run finish inside the same budget.
    let tight = ReachOptions {
        node_limit: Some(m.allocated() + 400),
        ..Default::default()
    };
    let reclaimed = reach_bfv(&mut m, &fsm, &tight);
    assert_eq!(reclaimed.outcome, Outcome::FixedPoint);
    assert!(
        m.stats().reclaim_attempts > 0,
        "tight budget should have forced at least one reclamation"
    );
    m.collect_garbage(&[]);
    let ok = reach_bfv(&mut m, &fsm, &ReachOptions::default());
    assert_eq!(ok.outcome, Outcome::FixedPoint);
    assert_eq!(ok.reached_states, Some(64.0)); // all 2^6 phase states
}

/// Deadline in the past: every engine must abort promptly with T.O. and
/// remain usable.
#[test]
fn timeout_recovery_is_clean() {
    let net = generators::gray(8);
    let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
    let opts = ReachOptions {
        time_limit: Some(std::time::Duration::ZERO),
        ..Default::default()
    };
    for _ in 0..3 {
        let r = reach_monolithic(&mut m, &fsm, &opts);
        assert_eq!(r.outcome, Outcome::TimeOut);
    }
    let ok = reach_monolithic(&mut m, &fsm, &ReachOptions::default());
    assert_eq!(ok.outcome, Outcome::FixedPoint);
    assert_eq!(ok.reached_states, Some(256.0));
}
