//! End-to-end audit: every engine's every intermediate set audits clean
//! on bundled circuits (via the per-iteration observer), and the `bfvr
//! audit` CLI holds its exit-code contract.

use std::cell::RefCell;
use std::process::Command;
use std::rc::Rc;

use bfvr::audit::{run_passes, AuditTargets, Report};
use bfvr::netlist::{circuits, generators, Netlist};
use bfvr::reach::{run, EngineKind, Outcome, ReachOptions, SetView};
use bfvr::sim::{EncodedFsm, OrderHeuristic};

/// Runs every engine over `net` with an observer that audits each
/// iteration's live set — graph, leaks, all semantic passes, and the
/// cross-representation converters — then audits the final reached χ.
/// Any finding anywhere fails the test.
fn audit_all_engines(net: &Netlist) {
    for kind in EngineKind::all() {
        let (mut m, fsm) = EncodedFsm::encode(net, OrderHeuristic::DfsFanin).unwrap();
        let report = Rc::new(RefCell::new(Report::new()));
        let sink = Rc::clone(&report);
        let opts = ReachOptions {
            observer: Some(Rc::new(move |m, fsm, view| {
                let space = fsm.space();
                let targets = match view.set {
                    SetView::Chi { reached, .. } => AuditTargets::for_chi(&space, reached),
                    SetView::Vector { reached, .. } => AuditTargets::for_bfv(&space, reached),
                    SetView::Cdec { reached, .. } => AuditTargets::for_cdec(&space, reached),
                }
                .with_leak_roots(view.roots);
                let scope = format!("{}/iter[{}]", view.engine.label(), view.iteration);
                run_passes(m, &targets, &scope, &mut sink.borrow_mut()).unwrap();
            })),
            ..Default::default()
        };
        let r = run(kind, &mut m, &fsm, &opts);
        assert_eq!(r.outcome, Outcome::FixedPoint, "{kind:?} on {}", net.name());
        assert!(r.iterations > 1, "{kind:?} on {}: trivial run", net.name());
        let chi = r.reached_chi.as_ref().unwrap();
        let space = fsm.space();
        run_passes(
            &mut m,
            &AuditTargets::for_chi(&space, chi.bdd()),
            &format!("{}/final", kind.label()),
            &mut report.borrow_mut(),
        )
        .unwrap();
        let report = report.borrow();
        assert!(
            report.is_empty(),
            "{kind:?} on {}:\n{}",
            net.name(),
            report.render()
        );
    }
}

#[test]
fn s27_audits_clean_on_all_engines() {
    audit_all_engines(&circuits::s27());
}

#[test]
fn counter_audits_clean_on_all_engines() {
    audit_all_engines(&generators::counter(5));
}

#[test]
fn queue_controller_audits_clean_on_all_engines() {
    audit_all_engines(&generators::queue_controller(2));
}

#[test]
fn paired_registers_audit_clean_on_all_engines() {
    audit_all_engines(&generators::paired_registers(4));
}

// ------------------------------------------------ CLI contract

#[test]
fn cli_audit_clean_circuit_exits_zero_with_summary() {
    let out = Command::new(env!("CARGO_BIN_EXE_bfvr"))
        .args(["audit", "gen:s27"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 error(s)"), "{stdout}");
    // All five engines ran and were audited.
    for label in ["BFV", "CBM", "MONO", "IWLS95", "CDEC"] {
        assert!(stdout.contains(label), "missing {label}: {stdout}");
    }
}

#[test]
fn cli_audit_selftest_reports_every_mutation_detected() {
    let out = Command::new(env!("CARGO_BIN_EXE_bfvr"))
        .args(["audit", "gen:counter:4", "--engine", "bfv", "--selftest"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.matches("-> detected by").count(),
        9,
        "every mutation must be detected: {stdout}"
    );
    assert!(!stdout.contains("NOT DETECTED"), "{stdout}");
}

#[test]
fn cli_audit_bad_input_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_bfvr"))
        .args(["audit", "gen:nosuchfamily:3"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
