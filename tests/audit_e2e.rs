//! End-to-end audit: every engine's every intermediate set audits clean
//! on bundled circuits (via the per-iteration observer), and the `bfvr
//! audit` CLI holds its exit-code contract.

use std::cell::RefCell;
use std::process::Command;
use std::rc::Rc;

use bfvr::audit::{run_passes, AuditTargets, Report};
use bfvr::netlist::{circuits, generators, Netlist};
use bfvr::reach::portfolio::Lane;
use bfvr::reach::{lane_label, run_repr, Outcome, ReachOptions, SetView};
use bfvr::sim::{EncodedFsm, OrderHeuristic};

/// Runs every engine × representation lane over `net` with an observer
/// that audits each iteration's live set — graph, leaks, all semantic
/// passes, and the cross-representation converters — then audits the
/// final reached χ. ZDD lanes audit through the production ZDD → χ
/// converter; zonotope lanes over-approximate by design, so the
/// exactness passes skip them. Any finding anywhere fails the test.
fn audit_all_engines(net: &Netlist) {
    audit_all_engines_under(net, OrderHeuristic::DfsFanin, &ReachOptions::default());
}

/// [`audit_all_engines`] with an explicit static order and base options
/// (the sifted-traversal tests arm `--sift` through `base`).
fn audit_all_engines_under(net: &Netlist, order: OrderHeuristic, base: &ReachOptions) {
    for lane in Lane::all_lanes() {
        let (mut m, fsm) = EncodedFsm::encode(net, order).unwrap();
        let report = Rc::new(RefCell::new(Report::new()));
        let sink = Rc::clone(&report);
        let opts = ReachOptions {
            observer: Some(Rc::new(move |m, fsm, view| {
                if matches!(view.set, SetView::Zonotope { .. }) {
                    return;
                }
                let space = fsm.space();
                let _chi_guard;
                let targets = match view.set {
                    SetView::Chi { reached, .. } => AuditTargets::for_chi(&space, reached),
                    SetView::Vector { reached, .. } => AuditTargets::for_bfv(&space, reached),
                    SetView::Cdec { reached, .. } => AuditTargets::for_cdec(&space, reached),
                    SetView::Zdd { store, reached, .. } => {
                        let chi = bfvr::bdd::bdd_from_zdd(m, store, reached, space.vars()).unwrap();
                        _chi_guard = m.func(chi);
                        // Sweep the conversion's scratch so the leak pass
                        // sees only what the engine itself left live.
                        let mut roots = view.roots.to_vec();
                        roots.push(chi);
                        m.collect_garbage(&roots);
                        AuditTargets::for_chi(&space, chi)
                    }
                    SetView::Zonotope { .. } => unreachable!("handled above"),
                }
                .with_leak_roots(view.roots);
                let scope = format!(
                    "{}/iter[{}]",
                    lane_label(view.engine, view.repr),
                    view.iteration
                );
                run_passes(m, &targets, &scope, &mut sink.borrow_mut()).unwrap();
            })),
            ..base.clone()
        };
        let r = run_repr(lane.engine, lane.repr, &mut m, &fsm, &opts);
        assert_eq!(r.outcome, Outcome::FixedPoint, "{lane:?} on {}", net.name());
        if !lane.over_approximates() {
            assert!(r.iterations > 1, "{lane:?} on {}: trivial run", net.name());
            let chi = r.reached_chi.as_ref().unwrap();
            let space = fsm.space();
            run_passes(
                &mut m,
                &AuditTargets::for_chi(&space, chi.bdd()),
                &format!("{}/final", lane.label()),
                &mut report.borrow_mut(),
            )
            .unwrap();
        }
        let report = report.borrow();
        assert!(
            report.is_empty(),
            "{lane:?} on {}:\n{}",
            net.name(),
            report.render()
        );
    }
}

#[test]
fn s27_audits_clean_on_all_engines() {
    audit_all_engines(&circuits::s27());
}

#[test]
fn counter_audits_clean_on_all_engines() {
    audit_all_engines(&generators::counter(5));
}

#[test]
fn queue_controller_audits_clean_on_all_engines() {
    audit_all_engines(&generators::queue_controller(2));
}

#[test]
fn paired_registers_audit_clean_on_all_engines() {
    audit_all_engines(&generators::paired_registers(4));
}

#[test]
fn sifted_traversal_audits_clean_on_all_engines() {
    // A deliberately bad static order (reversed declaration) over a
    // pair circuit large enough to cross the sifting floor: the χ
    // lanes reorder mid-run, and every intermediate and final set —
    // audited across the reorder boundary, including the χ↔BFV and
    // χ↔ZDD converters running against a permuted manager — must
    // still pass the full battery.
    let opts = ReachOptions {
        sift: true,
        sift_trigger: 1.2,
        ..ReachOptions::default()
    };
    audit_all_engines_under(
        &generators::paired_registers(6),
        OrderHeuristic::Reversed,
        &opts,
    );
}

// ------------------------------------------------ CLI contract

#[test]
fn cli_audit_clean_circuit_exits_zero_with_summary() {
    let out = Command::new(env!("CARGO_BIN_EXE_bfvr"))
        .args(["audit", "gen:s27"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 error(s)"), "{stdout}");
    // All five engines ran and were audited.
    for label in ["BFV", "CBM", "MONO", "IWLS95", "CDEC"] {
        assert!(stdout.contains(label), "missing {label}: {stdout}");
    }
}

#[test]
fn cli_audit_with_sift_exits_zero_and_tags_the_lane() {
    let out = Command::new(env!("CARGO_BIN_EXE_bfvr"))
        .args([
            "audit",
            "gen:pair:6",
            "--engine",
            "mono",
            "--order",
            "d",
            "--sift",
            "--sift-trigger",
            "1.2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 error(s)"), "{stdout}");
    assert!(stdout.contains("MONO~S"), "missing sift lane tag: {stdout}");
}

#[test]
fn cli_audit_selftest_reports_every_mutation_detected() {
    let out = Command::new(env!("CARGO_BIN_EXE_bfvr"))
        .args(["audit", "gen:counter:4", "--engine", "bfv", "--selftest"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.matches("-> detected by").count(),
        9,
        "every mutation must be detected: {stdout}"
    );
    assert!(!stdout.contains("NOT DETECTED"), "{stdout}");
}

#[test]
fn cli_audit_bad_input_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_bfvr"))
        .args(["audit", "gen:nosuchfamily:3"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
