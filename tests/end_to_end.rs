//! Cross-crate integration tests: netlist text → encoding → all engines.

use bfvr::netlist::{bench, blif, generators, generators::ToBench};
use bfvr::reach::{run, EngineKind, Outcome, ReachOptions};
use bfvr::sim::{EncodedFsm, OrderHeuristic};

/// Every engine must compute the identical reached set for every suite
/// circuit (cross-validated via the characteristic function).
#[test]
fn all_engines_agree_on_the_suite() {
    for (name, net) in generators::standard_suite() {
        // Skip the largest/deepest members to keep CI fast; the benches
        // cover them.
        let skip = ["gray8", "lfsr10", "cnt12", "shift16"];
        if skip.contains(&name.as_str()) {
            continue;
        }
        let mut counts = Vec::new();
        for kind in EngineKind::all() {
            let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
            let r = run(kind, &mut m, &fsm, &ReachOptions::default());
            assert_eq!(r.outcome, Outcome::FixedPoint, "{name}/{:?}", kind);
            counts.push((kind, r.reached_states.unwrap()));
        }
        let first = counts[0].1;
        for (kind, c) in &counts {
            assert_eq!(*c, first, "{name}: {kind:?} disagrees");
        }
    }
}

/// The full pipeline from ISCAS89 text: generate → serialize → parse →
/// traverse, with known reached-state counts.
#[test]
fn bench_text_roundtrip_preserves_reachability() {
    let cases: Vec<(bfvr::netlist::Netlist, f64)> = vec![
        (generators::counter_modk(5, 19), 19.0),
        (generators::johnson(6), 12.0),
        (generators::rotator(7), 7.0),
        (generators::paired_registers(5), 32.0),
    ];
    for (net, expect) in cases {
        let text = net.to_bench();
        let parsed = bench::parse_named(&text, net.name()).unwrap();
        let (mut m, fsm) = EncodedFsm::encode(&parsed, OrderHeuristic::DfsFanin).unwrap();
        let r = bfvr::reach::reach_bfv(&mut m, &fsm, &ReachOptions::default());
        assert_eq!(r.reached_states, Some(expect), "{}", net.name());
    }
}

/// BLIF round trip through the other front end, then traversal.
#[test]
fn blif_roundtrip_preserves_reachability() {
    let net = generators::queue_controller(2);
    let text = blif::write(&net);
    let parsed = blif::parse(&text).unwrap();
    let (mut m1, fsm1) = EncodedFsm::encode(&net, OrderHeuristic::Declaration).unwrap();
    let (mut m2, fsm2) = EncodedFsm::encode(&parsed, OrderHeuristic::Declaration).unwrap();
    let a = bfvr::reach::reach_bfv(&mut m1, &fsm1, &ReachOptions::default());
    let b = bfvr::reach::reach_bfv(&mut m2, &fsm2, &ReachOptions::default());
    assert_eq!(a.reached_states, b.reached_states);
    assert_eq!(a.iterations, b.iterations);
}

/// The reached count must be order-independent (all heuristics).
#[test]
fn reachability_is_order_independent() {
    let net = generators::traffic_chain(3);
    let mut counts = Vec::new();
    for h in [
        OrderHeuristic::DfsFanin,
        OrderHeuristic::Declaration,
        OrderHeuristic::Reversed,
        OrderHeuristic::Random(11),
        OrderHeuristic::Random(99),
    ] {
        let (mut m, fsm) = EncodedFsm::encode(&net, h).unwrap();
        let r = bfvr::reach::reach_bfv(&mut m, &fsm, &ReachOptions::default());
        assert_eq!(r.outcome, Outcome::FixedPoint);
        counts.push(r.reached_states.unwrap());
    }
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "counts: {counts:?}"
    );
}

/// Explicit-state baseline: breadth-first search with a concrete
/// interpreter must find the same reachable set size as the symbolic
/// engines (the ultimate ground truth on small circuits).
#[test]
fn explicit_bfs_confirms_symbolic_counts() {
    use std::collections::{HashSet, VecDeque};
    for (name, net) in generators::standard_suite() {
        let nl = net.latches().len();
        let ni = net.inputs().len();
        if nl > 14 || ni > 12 {
            continue; // explicit search must stay small
        }
        // Explicit BFS over all input combinations.
        let order = bfvr::netlist::topo::order(&net).unwrap();
        let step = |state: &Vec<bool>, inputs: u32| -> Vec<bool> {
            let mut vals = vec![false; net.num_signals()];
            for (i, &s) in net.inputs().iter().enumerate() {
                vals[s.index()] = inputs >> i & 1 == 1;
            }
            for (i, l) in net.latches().iter().enumerate() {
                vals[l.output.index()] = state[i];
            }
            for &g in &order {
                let gate = &net.gates()[g];
                let ins: Vec<bool> = gate.inputs.iter().map(|&x| vals[x.index()]).collect();
                vals[gate.output.index()] = gate.kind.eval(&ins);
            }
            net.latches()
                .iter()
                .map(|l| vals[l.input.index()])
                .collect()
        };
        let mut seen: HashSet<Vec<bool>> = HashSet::new();
        let mut queue = VecDeque::new();
        let init = net.initial_state();
        seen.insert(init.clone());
        queue.push_back(init);
        while let Some(st) = queue.pop_front() {
            for inputs in 0..(1u32 << ni) {
                let next = step(&st, inputs);
                if seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
        // Symbolic count.
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        let r = bfvr::reach::reach_bfv(&mut m, &fsm, &ReachOptions::default());
        assert_eq!(
            r.reached_states,
            Some(seen.len() as f64),
            "{name}: symbolic vs explicit"
        );
    }
}

/// Resource limits surface as the paper's T.O./M.O. outcomes, and a rerun
/// without limits completes.
#[test]
fn limits_then_completion() {
    let net = generators::johnson(10);
    let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
    let limited = ReachOptions {
        node_limit: Some(m.allocated() + 64),
        ..Default::default()
    };
    let r = bfvr::reach::reach_bfv(&mut m, &fsm, &limited);
    assert_eq!(r.outcome, Outcome::MemOut);
    let r2 = bfvr::reach::reach_bfv(&mut m, &fsm, &ReachOptions::default());
    assert_eq!(r2.outcome, Outcome::FixedPoint);
    assert_eq!(r2.reached_states, Some(20.0));
}
