//! End-to-end `bfvr-nlint`: count-preserving simplification must leave
//! the reached-state count of every exact engine × representation lane
//! bit-identical on every generator family, the simplified netlist must
//! audit clean, and the `bfvr lint` CLI holds its exit-code contract.

use std::process::{Command, Output};

use bfvr::audit::{run_passes as audit_passes, AuditTargets, Report as AuditReport};
use bfvr::netlist::{circuits, generators, Netlist};
use bfvr::nlint::{run_passes, simplify, simplify_with, SimplifyOptions};
use bfvr::reach::portfolio::Lane;
use bfvr::reach::{run_repr, Outcome, ReachOptions};
use bfvr::sim::{EncodedFsm, OrderHeuristic};

/// One modest instance per generator family, plus the bundled s27 —
/// small enough that the full exact lane matrix stays fast in debug.
fn family_suite() -> Vec<Netlist> {
    vec![
        circuits::s27(),
        generators::counter(6),
        generators::counter_modk(4, 10),
        generators::gray(5),
        generators::lfsr(6),
        generators::shift_register(6),
        generators::johnson(6),
        generators::paired_registers(5),
        generators::queue_controller(3),
        generators::rotator(7),
        generators::traffic_chain(2),
    ]
}

fn exact_count(net: &Netlist, lane: Lane) -> f64 {
    let (mut m, fsm) = EncodedFsm::encode(net, OrderHeuristic::DfsFanin).unwrap();
    let r = run_repr(
        lane.engine,
        lane.repr,
        &mut m,
        &fsm,
        &ReachOptions::default(),
    );
    assert_eq!(r.outcome, Outcome::FixedPoint, "{lane:?} on {}", net.name());
    r.reached_states.unwrap()
}

/// Default (count-preserving) simplification: every exact lane reaches
/// the identical state count on the simplified netlist, and the
/// simplified netlist never grew.
#[test]
fn simplification_preserves_reached_counts_across_all_exact_lanes() {
    for net in family_suite() {
        let s = simplify(&net).unwrap();
        let name = net.name();
        assert!(
            s.netlist.gates().len() <= net.gates().len()
                && s.netlist.latches().len() <= net.latches().len(),
            "{name}: simplification must not grow the netlist"
        );
        for lane in Lane::all_lanes() {
            if lane.over_approximates() {
                continue;
            }
            let before = exact_count(&net, lane);
            let after = exact_count(&s.netlist, lane);
            assert_eq!(
                before.to_bits(),
                after.to_bits(),
                "{name}/{lane:?}: simplification changed the reached count \
                 ({before} -> {after})"
            );
        }
    }
}

/// The simplified netlist lints clean of the findings simplification
/// claims to discharge (stuck gates, duplicate gates), and its final
/// reached set audits clean.
#[test]
fn simplified_netlists_lint_and_audit_clean() {
    for net in family_suite() {
        let s = simplify_with(&net, SimplifyOptions { prune_dead: true }).unwrap();
        let name = net.name();
        let report = run_passes(&s.netlist);
        assert!(!report.has_errors(), "{name}: {}", report.render());
        for f in report.sorted() {
            assert!(
                !matches!(
                    f.pass,
                    bfvr::nlint::Pass::ConstProp | bfvr::nlint::Pass::DupGate
                ),
                "{name}: simplification left a discharged finding: {f}"
            );
        }
        // Exactness audit of the final reached χ on the simplified FSM.
        let (mut m, fsm) = EncodedFsm::encode(&s.netlist, OrderHeuristic::DfsFanin).unwrap();
        let r = bfvr::reach::reach_bfv(&mut m, &fsm, &ReachOptions::default());
        assert_eq!(r.outcome, Outcome::FixedPoint, "{name}");
        let chi = r.reached_chi.as_ref().unwrap();
        let space = fsm.space();
        let mut audit = AuditReport::new();
        audit_passes(
            &mut m,
            &AuditTargets::for_chi(&space, chi.bdd()),
            &format!("{name}/simplified"),
            &mut audit,
        )
        .unwrap();
        assert!(audit.is_empty(), "{name}: {}", audit.render());
    }
}

/// Dead-latch pruning is opt-in because it projects the state space:
/// pair5 has dead shadow registers, so the pruned count differs while
/// the default (count-preserving) path keeps them.
#[test]
fn dead_latch_pruning_is_opt_in() {
    let net = generators::paired_registers(5);
    let kept = simplify(&net).unwrap();
    assert!(kept.dead_latches.is_empty());
    assert_eq!(kept.netlist.latches().len(), net.latches().len());
    let pruned = simplify_with(&net, SimplifyOptions { prune_dead: true }).unwrap();
    assert!(!pruned.dead_latches.is_empty());
    assert!(pruned.netlist.latches().len() < net.latches().len());
}

fn bfvr(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bfvr"))
        .args(args)
        .output()
        .expect("binary runs")
}

/// `bfvr lint` exit-code contract: clean circuits exit 0, `--selftest`
/// detects every seeded corruption, `--fix` writes a parseable netlist
/// with the identical reached count, `--prune` requires `--fix`.
#[test]
fn lint_cli_contract() {
    let clean = bfvr(&["lint", "gen:s27", "--selftest"]);
    assert!(clean.status.success(), "{clean:?}");
    let out = String::from_utf8_lossy(&clean.stdout).to_string();
    assert!(out.contains("0 error(s)"), "{out}");
    assert!(out.contains("detected by"), "{out}");
    assert!(!out.contains("NOT DETECTED"), "{out}");

    let dir = std::env::temp_dir().join("bfvr_lint_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let fixed = dir.join("pair5.bench");
    let fix = bfvr(&["lint", "gen:pair:5", "--fix", fixed.to_str().unwrap()]);
    assert!(fix.status.success(), "{fix:?}");
    let reach_fixed = bfvr(&["reach", fixed.to_str().unwrap()]);
    assert!(reach_fixed.status.success());
    let reach_orig = bfvr(&["reach", "gen:pair:5"]);
    let states = |o: &Output| {
        String::from_utf8_lossy(&o.stdout)
            .lines()
            .last()
            .unwrap()
            .split_whitespace()
            .nth(2)
            .unwrap()
            .to_string()
    };
    assert_eq!(states(&reach_fixed), states(&reach_orig));

    let bad = bfvr(&["lint", "gen:s27", "--prune"]);
    assert!(!bad.status.success());
}

/// `--order coi|force` preserves reached-state counts through the CLI on
/// s27 and queue4 (the acceptance circuits).
#[test]
fn cli_order_flags_preserve_counts() {
    for (spec, expect) in [("gen:s27", "6"), ("gen:queue:4", "272")] {
        for order in ["s1", "decl", "coi", "force"] {
            let o = bfvr(&["reach", spec, "--order", order]);
            assert!(o.status.success(), "{spec}/{order}: {o:?}");
            let out = String::from_utf8_lossy(&o.stdout).to_string();
            let row = out.lines().last().unwrap();
            assert_eq!(
                row.split_whitespace().nth(2),
                Some(expect),
                "{spec}/{order}: {row}"
            );
        }
    }
}
