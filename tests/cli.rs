//! End-to-end tests of the `bfvr` command-line tool.

use std::process::{Command, Output};

fn bfvr(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bfvr"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).to_string()
}

#[test]
fn help_prints_usage() {
    let o = bfvr(&["help"]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("USAGE"));
    let none = bfvr(&[]);
    assert!(none.status.success());
}

#[test]
fn unknown_command_fails() {
    let o = bfvr(&["frobnicate"]);
    assert!(!o.status.success());
    assert!(String::from_utf8_lossy(&o.stderr).contains("unknown command"));
}

#[test]
fn gen_emits_parseable_bench() {
    let o = bfvr(&["gen", "counter:5"]);
    assert!(o.status.success());
    let net = bfvr::netlist::bench::parse(&stdout(&o)).expect("gen output parses");
    assert_eq!(net.latches().len(), 5);
    let bad = bfvr(&["gen", "nonsense:1"]);
    assert!(!bad.status.success());
}

#[test]
fn stats_via_gen_pseudofile() {
    let o = bfvr(&["stats", "gen:s27"]);
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("3 latches"));
    assert!(out.contains("logic depth"));
}

#[test]
fn convert_roundtrip_through_files() {
    let dir = std::env::temp_dir().join("bfvr_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let bench_path = dir.join("c.bench");
    let blif_path = dir.join("c.blif");
    let gen = bfvr(&["gen", "johnson:5"]);
    std::fs::write(&bench_path, stdout(&gen)).unwrap();
    let to_blif = bfvr(&["convert", bench_path.to_str().unwrap(), "--to", "blif"]);
    assert!(to_blif.status.success());
    std::fs::write(&blif_path, stdout(&to_blif)).unwrap();
    let back = bfvr(&["convert", blif_path.to_str().unwrap(), "--to", "bench"]);
    assert!(
        back.status.success(),
        "blif did not convert back: {}",
        String::from_utf8_lossy(&back.stderr)
    );
    let net = bfvr::netlist::bench::parse(&stdout(&back)).expect("round trip parses");
    assert_eq!(net.latches().len(), 5);
}

#[test]
fn reach_reports_states() {
    let o = bfvr(&["reach", "gen:modk:4:10", "--engine", "all"]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let out = stdout(&o);
    // All five engine rows complete and report 10 states.
    let rows: Vec<&str> = out.lines().skip(1).collect();
    assert_eq!(rows.len(), 5, "{out}");
    for row in rows {
        let cols: Vec<&str> = row.split_whitespace().collect();
        assert_eq!(cols[1], "ok", "{row}");
        assert_eq!(cols[2], "10", "{row}");
    }
}

#[test]
fn check_holds_and_violated() {
    // mod-5 counter never shows 111 (value 7).
    let holds = bfvr(&["check", "gen:modk:3:5", "--bad", "111"]);
    assert!(holds.status.success());
    assert!(stdout(&holds).contains("HOLDS"));
    // Plain counter does reach 111.
    let violated = bfvr(&["check", "gen:counter:3", "--bad", "111"]);
    assert!(!violated.status.success());
    assert!(stdout(&violated).contains("VIOLATED at depth 7"));
}

#[test]
fn trace_prints_steps() {
    let o = bfvr(&["trace", "gen:counter:3", "--to", "101"]);
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("in 5 steps"), "{out}");
    assert!(out.contains("en=1"));
    let unreach = bfvr(&["trace", "gen:modk:3:5", "--to", "111"]);
    assert!(unreach.status.success());
    assert!(stdout(&unreach).contains("UNREACHABLE"));
}

#[test]
fn bad_cube_width_reported() {
    let o = bfvr(&["check", "gen:counter:3", "--bad", "1"]);
    assert!(!o.status.success());
    assert!(String::from_utf8_lossy(&o.stderr).contains("3 latches"));
}

#[test]
fn dump_reached_prints_cubes() {
    let o = bfvr(&["reach", "gen:johnson:4", "--dump-reached"]);
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("one cube per line"));
    // The 8 Johnson codes pack into exactly 4 cubes.
    let cubes: Vec<&str> = out
        .lines()
        .filter(|l| l.trim_start().chars().all(|c| "01-".contains(c)) && !l.trim().is_empty())
        .collect();
    assert_eq!(cubes.len(), 4, "{out}");
}

#[test]
fn convert_to_verilog() {
    let o = bfvr(&["convert", "gen:rot:4", "--to", "verilog"]);
    assert!(o.status.success());
    let v = stdout(&o);
    assert!(v.contains("module rot4"));
    assert!(v.contains("endmodule"));
    assert_eq!(v.matches("always").count(), 4);
}

#[test]
fn trace_out_then_report_renders_timelines() {
    let dir = std::env::temp_dir().join("bfvr_cli_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("run.jsonl");
    let path = trace.to_str().unwrap();
    let run = bfvr(&[
        "reach",
        "gen:modk:3:5",
        "--engine",
        "all",
        "--trace-out",
        path,
    ]);
    assert!(
        run.status.success(),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );
    // The recorded stream is valid JSONL starting with the meta header.
    let raw = std::fs::read_to_string(&trace).unwrap();
    assert!(
        raw.lines().next().unwrap().contains("\"ev\":\"meta\""),
        "{raw}"
    );
    let text = bfvr(&["report", path]);
    assert!(
        text.status.success(),
        "{}",
        String::from_utf8_lossy(&text.stderr)
    );
    let out = stdout(&text);
    // Summary row per engine plus a per-iteration timeline for each.
    for engine in ["BFV", "CBM", "MONO", "IWLS95", "CDEC"] {
        assert!(out.contains(&format!("-- {engine} timeline --")), "{out}");
    }
    assert!(out.contains("cache-hit"), "{out}");
    let md = bfvr(&["report", path, "--format", "md"]);
    assert!(md.status.success());
    assert!(stdout(&md).contains("| engine |"), "{}", stdout(&md));
    // A missing file is a clean error, not a panic.
    let missing = bfvr(&["report", dir.join("nope.jsonl").to_str().unwrap()]);
    assert!(!missing.status.success());
}
