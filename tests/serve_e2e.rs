//! Process-level crash-safety end-to-end: kill-resume equivalence for
//! every exact lane through the real `bfvr` binary, the supervised
//! daemon recovering a fault-injected job, journal replay idempotence
//! across daemon restarts, and the degraded-disk CLI contracts
//! (checkpoint write failure is a warning, trace write failure is a
//! nonzero exit).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use bfvr::reach::portfolio::Lane;

fn bfvr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bfvr"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bfvr-serve-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Pulls `(states, iterations)` out of a reach/resume summary row:
/// `LANE  ok  <states>  <iters>  <time>  <peak>`.
fn parse_row(out: &Output) -> (u64, u64) {
    let stdout = String::from_utf8_lossy(&out.stdout);
    let row = stdout
        .lines()
        .find(|l| l.split_whitespace().nth(1) == Some("ok"))
        .unwrap_or_else(|| panic!("no ok row in:\n{stdout}"));
    let cols: Vec<&str> = row.split_whitespace().collect();
    (cols[2].parse().unwrap(), cols[3].parse().unwrap())
}

/// CLI flag values for one lane (`--engine`, `--repr`).
fn lane_flags(lane: Lane) -> (&'static str, &'static str) {
    use bfvr::reach::EngineKind;
    use bfvr::setrepr::ReprKind;
    let engine = match lane.engine {
        EngineKind::Bfv => "bfv",
        EngineKind::Cbm => "cbm",
        EngineKind::Monolithic => "mono",
        EngineKind::Iwls95 => "iwls95",
        EngineKind::Cdec => "cdec",
    };
    let repr = match lane.repr {
        ReprKind::Chi => "chi",
        ReprKind::Bfv => "bfv",
        ReprKind::Cdec => "cdec",
        ReprKind::Zdd => "zdd",
        ReprKind::Zonotope => "zono",
    };
    (engine, repr)
}

/// The acceptance property: for an exact lane, SIGABRT-killing the
/// child at iteration 2 and resuming from its last durable checkpoint
/// lands on the identical fixed point as an uninterrupted run.
fn kill_resume_equivalent(lane: Lane, dir: &Path) {
    let (engine, repr) = lane_flags(lane);
    let circuit = "gen:counter:4";

    let baseline = bfvr()
        .args(["reach", circuit, "--engine", engine, "--repr", repr])
        .output()
        .unwrap();
    assert!(baseline.status.success(), "{lane:?} baseline failed");
    let (expect_states, expect_iters) = parse_row(&baseline);

    let ckpt = dir.join(format!("{engine}-{repr}.ckpt"));
    let killed = bfvr()
        .args([
            "reach",
            circuit,
            "--engine",
            engine,
            "--repr",
            repr,
            "--checkpoint-out",
            ckpt.to_str().unwrap(),
            "--checkpoint-every",
            "1",
            "--kill-at-iter",
            "2",
        ])
        .output()
        .unwrap();
    assert!(!killed.status.success(), "{lane:?}: kill did not fire");
    #[cfg(unix)]
    assert!(
        killed.status.code().is_none(),
        "{lane:?}: expected death by signal, got exit {:?}",
        killed.status.code()
    );
    assert!(ckpt.exists(), "{lane:?}: no durable checkpoint survived");

    let resumed = bfvr()
        .args(["resume", "--from", ckpt.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        resumed.status.success(),
        "{lane:?} resume failed:\n{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let (states, iters) = parse_row(&resumed);
    assert_eq!(
        states, expect_states,
        "{lane:?}: kill-resume changed the fixed point"
    );
    assert!(
        iters >= expect_iters,
        "{lane:?}: cumulative iterations went backwards"
    );
    // Success removes the checkpoint: nothing stale left to resume.
    assert!(!ckpt.exists(), "{lane:?}: stale checkpoint after success");
}

#[test]
fn kill_resume_is_equivalent_on_every_exact_lane() {
    let dir = scratch("kill-resume");
    for lane in Lane::all_lanes() {
        if lane.over_approximates() {
            continue;
        }
        kill_resume_equivalent(lane, &dir);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_recovers_fault_injected_job_and_replay_is_idempotent() {
    let dir = scratch("daemon");
    let d = dir.to_str().unwrap();

    let s27 = bfvr()
        .args(["submit", "gen:s27", "--dir", d, "--id", "s27"])
        .output()
        .unwrap();
    assert!(
        s27.status.success(),
        "{}",
        String::from_utf8_lossy(&s27.stderr)
    );
    // queue4's first attempt aborts at iteration 2, after one durable
    // periodic checkpoint: the supervisor must retry and resume it.
    let q4 = bfvr()
        .args([
            "submit",
            "gen:queue:4",
            "--dir",
            d,
            "--id",
            "q4",
            "--fault",
            "kill@2",
            "--checkpoint-every",
            "1",
        ])
        .output()
        .unwrap();
    assert!(
        q4.status.success(),
        "{}",
        String::from_utf8_lossy(&q4.stderr)
    );

    let drain = bfvr().args(["serve", "--dir", d]).output().unwrap();
    assert!(
        drain.status.success(),
        "{}",
        String::from_utf8_lossy(&drain.stderr)
    );
    let summary = String::from_utf8_lossy(&drain.stdout);

    let ledger = bfvr::serve::replay(&dir.join("journal.jsonl")).unwrap();
    let s27 = ledger.get("s27").unwrap();
    assert_eq!(
        s27.phase,
        bfvr::serve::JobPhase::Done,
        "summary:\n{summary}"
    );
    assert_eq!(s27.states, Some(6.0));
    let q4 = ledger.get("q4").unwrap();
    assert_eq!(q4.phase, bfvr::serve::JobPhase::Done, "summary:\n{summary}");
    assert_eq!(q4.states, Some(272.0));
    assert!(q4.attempts >= 2, "fault did not force a retry");
    assert!(
        q4.reason.as_deref().is_some_and(|r| r.contains("signal")),
        "crash reason not journaled: {:?}",
        q4.reason
    );

    // Restarting the drained daemon is a pure no-op: replay alone.
    let journal_before = std::fs::read(dir.join("journal.jsonl")).unwrap();
    for _ in 0..2 {
        let again = bfvr().args(["serve", "--dir", d]).output().unwrap();
        assert!(again.status.success());
        assert_eq!(
            std::fs::read(dir.join("journal.jsonl")).unwrap(),
            journal_before,
            "idle restart mutated the journal"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_write_failure_warns_but_run_succeeds() {
    let dir = scratch("degraded-ckpt");
    let blocker = dir.join("not-a-directory");
    std::fs::write(&blocker, b"occupied").unwrap();
    let doomed = blocker.join("x.ckpt");

    let out = bfvr()
        .args([
            "reach",
            "gen:s27",
            "--engine",
            "bfv",
            "--checkpoint-out",
            doomed.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    // Failure to persist progress must not fail a run that completed.
    assert!(out.status.success(), "degraded disk failed the run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("checkpoint write failed"),
        "no diagnostic on stderr:\n{stderr}"
    );
    let (states, _) = parse_row(&out);
    assert_eq!(states, 6);
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(target_os = "linux")]
#[test]
fn latched_trace_write_error_is_a_nonzero_exit() {
    // /dev/full accepts the open and fails every write with ENOSPC —
    // the exact latched-error shape JsonlSink is built to surface.
    let out = bfvr()
        .args([
            "reach",
            "gen:s27",
            "--engine",
            "bfv",
            "--trace-out",
            "/dev/full",
        ])
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "trace data was silently dropped without failing the run"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("trace write failed"),
        "no diagnostic on stderr:\n{stderr}"
    );
}

#[test]
fn resume_refuses_a_corrupt_checkpoint_with_a_structured_error() {
    let dir = scratch("resume-corrupt");
    let p = dir.join("evil.ckpt");
    std::fs::write(&p, b"BFVRCKPTgarbage-that-is-not-a-checkpoint").unwrap();
    let out = bfvr()
        .args(["resume", "--from", p.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    #[cfg(unix)]
    assert!(
        out.status.code().is_some(),
        "loader must not crash by signal"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("checkpoint"),
        "no structured diagnostic:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
