//! Deterministic fault-injection sweep over every reachability engine.
//!
//! For each engine × fault kind (forced `NodeLimit` allocation failures,
//! forced `Deadline` trips) × several injection points, asserts the full
//! recovery contract:
//!
//! 1. no panic — the engine returns a partial [`ReachResult`];
//! 2. the partial result carries non-empty statistics and, once at least
//!    one state is reached, a checkpoint;
//! 3. `check_invariants()` holds on the manager right after the fault;
//! 4. the manager stays usable (fresh operations succeed);
//! 5. `resume()` (or a rerun when nothing was checkpointed) under
//!    restored budgets reaches the identical fixed point — same
//!    reached-state count — as an uninterrupted run;
//! 6. after every result and checkpoint is dropped, a collection returns
//!    the live-node count to the post-baseline baseline (no `Func` leaks
//!    on the error path).

use bfvr::bdd::{BddManager, FaultPlan, Var};
use bfvr::netlist::generators;
use bfvr::reach::{resume, run, EngineKind, Outcome, ReachOptions, ReachResult};
use bfvr::sim::{EncodedFsm, OrderHeuristic};

/// Which fault the plan injects.
#[derive(Clone, Copy, Debug)]
enum Fault {
    /// Fail every allocation with ordinal ≥ k (reports `M.O.`).
    NodeLimit(u64),
    /// Trip every `check_deadline` with ordinal ≥ k (reports `T.O.`).
    Deadline(u64),
}

impl Fault {
    fn plan(self) -> FaultPlan {
        match self {
            Fault::NodeLimit(k) => FaultPlan::node_limit_at(k),
            Fault::Deadline(k) => FaultPlan::deadline_at(k),
        }
    }

    fn expected_outcome(self) -> Outcome {
        match self {
            Fault::NodeLimit(_) => Outcome::MemOut,
            Fault::Deadline(_) => Outcome::TimeOut,
        }
    }
}

/// Allocation-ordinal injection points: during engine setup, in the
/// early iterations, and deep into the traversal. The deepest point must
/// stay below the *total* allocations of the leanest engine×circuit in
/// the sweep (~290 for IWLS95/Monolithic on `counter(5)` from a cold
/// manager): with adaptive GC nothing is re-allocated mid-run, so a run
/// that completes in fewer allocations never reaches the ordinal.
const ALLOC_POINTS: [u64; 3] = [25, 150, 250];
/// `check_deadline`-ordinal injection points (one check per iteration).
const DEADLINE_POINTS: [u64; 3] = [1, 3, 9];

/// The sweep body for one engine: baseline run, then every injection
/// point of the given fault kind against the same manager.
fn sweep(kind: EngineKind, faults: &[Fault]) {
    let net = generators::counter(5);
    let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
    let opts = ReachOptions::default();

    // Uninterrupted reference run.
    let baseline = run(kind, &mut m, &fsm, &opts);
    assert_eq!(baseline.outcome, Outcome::FixedPoint, "{kind:?} baseline");
    let expect_states = baseline.reached_states.expect("baseline counts states");
    let expect_iterations = baseline.iterations;
    drop(baseline);
    m.collect_garbage(&[]);
    let base_live = m.allocated();

    for &fault in faults {
        // Cold-start each injection: sweep garbage and flush the computed
        // caches so the run re-allocates its graph and the allocation
        // ordinals actually reach the injection point (a warm manager
        // would serve the whole traversal from cache without allocating).
        m.collect_garbage(&[]);
        m.clear_cache();
        m.set_fault_plan(fault.plan());
        let mut partial: ReachResult = run(kind, &mut m, &fsm, &opts);
        m.clear_fault_plan();

        // (2) A partial result, not a panic, with non-empty stats.
        assert_eq!(
            partial.outcome,
            fault.expected_outcome(),
            "{kind:?} {fault:?}: fault did not fire — lower the injection point"
        );
        assert!(partial.peak_nodes > 0, "{kind:?} {fault:?}: empty stats");
        assert!(
            partial.iterations <= expect_iterations,
            "{kind:?} {fault:?}: partial run overshot the fixed point"
        );
        if partial.iterations > 0 {
            assert!(
                partial.checkpoint.is_some(),
                "{kind:?} {fault:?}: progress was made but nothing checkpointed"
            );
        }

        // (3) Structural invariants hold right after the failure.
        m.check_invariants()
            .unwrap_or_else(|e| panic!("{kind:?} {fault:?}: invariants broken: {e}"));

        // (4) The manager stays usable for unrelated fresh work.
        let probe = m.and(m.var(Var(0)), m.var(Var(1))).unwrap();
        assert!(!probe.is_const());

        // (5) Resume under restored budgets reaches the identical fixed
        // point; without a checkpoint the raised-budget retry restarts.
        let checkpoint = partial.checkpoint.take();
        let resumed_from_checkpoint = checkpoint.is_some();
        let resumed = match checkpoint {
            Some(c) => resume(&mut m, &fsm, &opts, c),
            None => run(kind, &mut m, &fsm, &opts),
        };
        assert_eq!(
            resumed.outcome,
            Outcome::FixedPoint,
            "{kind:?} {fault:?}: recovery did not complete"
        );
        assert_eq!(
            resumed.reached_states,
            Some(expect_states),
            "{kind:?} {fault:?}: recovered fixed point differs from baseline"
        );
        if resumed_from_checkpoint {
            assert!(
                resumed.iterations >= partial.iterations,
                "{kind:?} {fault:?}: resume lost iteration progress"
            );
        }
        m.check_invariants()
            .unwrap_or_else(|e| panic!("{kind:?} {fault:?}: invariants broken post-resume: {e}"));

        // (6) No leaks: dropping every handle returns the manager to the
        // post-baseline live set.
        drop(partial);
        drop(resumed);
        m.collect_garbage(&[]);
        assert_eq!(
            m.allocated(),
            base_live,
            "{kind:?} {fault:?}: live nodes leaked across the fault cycle"
        );
    }
}

fn alloc_faults() -> Vec<Fault> {
    ALLOC_POINTS.iter().map(|&k| Fault::NodeLimit(k)).collect()
}

fn deadline_faults() -> Vec<Fault> {
    DEADLINE_POINTS
        .iter()
        .map(|&k| Fault::Deadline(k))
        .collect()
}

#[test]
fn bfv_recovers_from_allocation_faults() {
    sweep(EngineKind::Bfv, &alloc_faults());
}

#[test]
fn bfv_recovers_from_deadline_faults() {
    sweep(EngineKind::Bfv, &deadline_faults());
}

#[test]
fn cbm_recovers_from_allocation_faults() {
    sweep(EngineKind::Cbm, &alloc_faults());
}

#[test]
fn cbm_recovers_from_deadline_faults() {
    sweep(EngineKind::Cbm, &deadline_faults());
}

#[test]
fn monolithic_recovers_from_allocation_faults() {
    sweep(EngineKind::Monolithic, &alloc_faults());
}

#[test]
fn monolithic_recovers_from_deadline_faults() {
    sweep(EngineKind::Monolithic, &deadline_faults());
}

#[test]
fn iwls95_recovers_from_allocation_faults() {
    sweep(EngineKind::Iwls95, &alloc_faults());
}

#[test]
fn iwls95_recovers_from_deadline_faults() {
    sweep(EngineKind::Iwls95, &deadline_faults());
}

#[test]
fn cdec_recovers_from_allocation_faults() {
    sweep(EngineKind::Cdec, &alloc_faults());
}

#[test]
fn cdec_recovers_from_deadline_faults() {
    sweep(EngineKind::Cdec, &deadline_faults());
}

/// A capacity fault is an internal error, never `M.O.`, and is never
/// checkpointed as recoverable.
#[test]
fn capacity_faults_report_error_not_memout() {
    for kind in EngineKind::all() {
        let net = generators::counter(4);
        let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
        m.set_fault_plan(FaultPlan::capacity_at(40));
        let r = run(kind, &mut m, &fsm, &ReachOptions::default());
        m.clear_fault_plan();
        assert_eq!(r.outcome, Outcome::Error, "{kind:?}");
        assert!(r.checkpoint.is_none(), "{kind:?}: errors must not resume");
        m.check_invariants().unwrap();
    }
}

/// Post-error reuse without fault plans: a run that mem-outs against a
/// real node ceiling completes after the ceiling is raised.
#[test]
fn natural_node_limit_then_raised_budget_completes() {
    let net = generators::queue_controller(2);
    let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
    let tight = ReachOptions {
        node_limit: Some(m.allocated() + 30),
        ..Default::default()
    };
    let mut first = run(EngineKind::Monolithic, &mut m, &fsm, &tight);
    assert_eq!(first.outcome, Outcome::MemOut);
    let open = ReachOptions::default();
    let second = match first.checkpoint.take() {
        Some(c) => resume(&mut m, &fsm, &open, c),
        None => run(EngineKind::Monolithic, &mut m, &fsm, &open),
    };
    assert_eq!(second.outcome, Outcome::FixedPoint);
    let fresh = BddManager::new(m.num_vars());
    drop(fresh); // managers stay independently constructible throughout
    m.check_invariants().unwrap();
}

// --------------------------------------------- durable-write failures

/// Disk faults on the durable-checkpoint write path must never take the
/// traversal down with them: the hook's write fails (the checkpoint
/// target's parent is a regular file, the cheapest deterministic stand-
/// in for a full or read-only disk), the failure is latched for
/// reporting, and the run itself continues to its exact fixed point.
#[test]
fn checkpoint_write_failure_is_reported_not_fatal() {
    use std::cell::RefCell;
    use std::rc::Rc;

    use bfvr::serve::{level_map_of, write_checkpoint, CkptError, CkptMeta};

    let net = generators::counter(5);
    let (mut m, fsm) = EncodedFsm::encode(&net, OrderHeuristic::DfsFanin).unwrap();
    let baseline = run(EngineKind::Bfv, &mut m, &fsm, &ReachOptions::default());
    let expect_states = baseline.reached_states;
    drop(baseline);

    // A checkpoint path whose parent is a file: every write attempt
    // fails with a structured I/O error, exactly like ENOSPC would.
    let dir = std::env::temp_dir().join(format!("bfvr-ckpt-fault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let blocker = dir.join("not-a-directory");
    std::fs::write(&blocker, b"occupied").unwrap();
    let doomed = blocker.join("inner.ckpt");

    let failures: Rc<RefCell<Vec<CkptError>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = Rc::clone(&failures);
    let opts = ReachOptions {
        checkpoint_every: Some(1),
        checkpoint_hook: Some(Rc::new(move |m, cp| {
            let meta = CkptMeta {
                engine: cp.engine,
                repr: cp.repr,
                order: "s1".to_string(),
                circuit: "gen:counter:5".to_string(),
                fingerprint: 0,
                num_vars: m.num_vars(),
                level2var: level_map_of(m),
                iterations: cp.iterations,
            };
            if let Err(e) = write_checkpoint(&doomed, m, &meta, cp.state()) {
                sink.borrow_mut().push(e);
            }
        })),
        ..Default::default()
    };
    let r = run(EngineKind::Bfv, &mut m, &fsm, &opts);

    // The run is whole: fixed point, baseline-equal count, no panic.
    assert_eq!(r.outcome, Outcome::FixedPoint);
    assert_eq!(r.reached_states, expect_states);
    // Every periodic write failed, each as a structured I/O error.
    let failures = failures.borrow();
    assert!(!failures.is_empty(), "fault never fired");
    assert!(failures.iter().all(|e| matches!(e, CkptError::Io(_))));
    // And no partial temp files leaked next to the target.
    assert!(!blocker.join("inner.ckpt.tmp").exists());
    m.check_invariants().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
