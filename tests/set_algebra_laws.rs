//! Algebraic-law property tests for the public set API, across crates.
//!
//! Deterministic xorshift generation keeps the suite dependency-free; a
//! failing case is reproducible from the printed case number.

use bfvr::bdd::BddManager;
use bfvr::bfv::{Space, StateSet};

const N: usize = 4;
const CASES: u64 = 96;

/// xorshift64* — deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn for_cases(seed: u64, mut check: impl FnMut(u64, &mut Rng)) {
    let mut rng = Rng::new(seed);
    for case in 0..CASES {
        check(case, &mut rng);
    }
}

fn set_from_mask(m: &mut BddManager, space: &Space, mask: u16) -> StateSet {
    let points: Vec<Vec<bool>> = (0..16u16)
        .filter(|p| mask & (1 << p) != 0)
        .map(|p| (0..N).map(|i| (p >> (N - 1 - i)) & 1 == 1).collect())
        .collect();
    StateSet::from_points(m, space, &points).expect("small sets build")
}

fn mask_of(m: &mut BddManager, space: &Space, s: &StateSet) -> u16 {
    let mut mask = 0u16;
    for mem in s.members(m, space).expect("members enumerable") {
        let p: u16 = mem
            .iter()
            .enumerate()
            .map(|(i, &b)| (b as u16) << (N - 1 - i))
            .sum();
        mask |= 1 << p;
    }
    mask
}

#[test]
fn boolean_algebra_laws() {
    for_cases(0x5E71, |case, rng| {
        let (a, b, c) = (rng.next() as u16, rng.next() as u16, rng.next() as u16);
        let mut m = BddManager::new(N as u32);
        let space = Space::contiguous(N as u32);
        let sa = set_from_mask(&mut m, &space, a);
        let sb = set_from_mask(&mut m, &space, b);
        let sc = set_from_mask(&mut m, &space, c);
        // Union/intersection against bitmask arithmetic.
        let u = sa.union(&mut m, &space, &sb).unwrap();
        assert_eq!(mask_of(&mut m, &space, &u), a | b, "case {case}");
        let i = sa.intersect(&mut m, &space, &sb).unwrap();
        assert_eq!(mask_of(&mut m, &space, &i), a & b, "case {case}");
        // Distributivity: a ∩ (b ∪ c) = (a∩b) ∪ (a∩c).
        let bc = sb.union(&mut m, &space, &sc).unwrap();
        let lhs = sa.intersect(&mut m, &space, &bc).unwrap();
        let ab = sa.intersect(&mut m, &space, &sb).unwrap();
        let ac = sa.intersect(&mut m, &space, &sc).unwrap();
        let rhs = ab.union(&mut m, &space, &ac).unwrap();
        assert_eq!(
            mask_of(&mut m, &space, &lhs),
            mask_of(&mut m, &space, &rhs),
            "case {case}"
        );
        // Canonicity: equal masks ⇒ identical representations.
        assert_eq!(lhs, rhs, "case {case}");
        // Absorption: a ∪ (a ∩ b) = a.
        let absorbed = sa.union(&mut m, &space, &ab).unwrap();
        assert_eq!(absorbed, sa, "case {case}");
    });
}

#[test]
fn counting_and_membership_consistent() {
    for_cases(0x5E72, |case, rng| {
        let a = rng.next() as u16;
        let mut m = BddManager::new(N as u32);
        let space = Space::contiguous(N as u32);
        let s = set_from_mask(&mut m, &space, a);
        assert_eq!(
            s.len(&mut m, &space).unwrap(),
            u128::from(a.count_ones()),
            "case {case}"
        );
        for p in 0..16u16 {
            let point: Vec<bool> = (0..N).map(|i| (p >> (N - 1 - i)) & 1 == 1).collect();
            assert_eq!(
                s.contains(&m, &space, &point).unwrap(),
                a & (1 << p) != 0,
                "case {case}: point {p:04b}"
            );
        }
    });
}

#[test]
fn complement_partitions_the_universe() {
    for_cases(0x5E73, |case, rng| {
        let a = match rng.next() as u16 {
            0 => 1,
            u16::MAX => u16::MAX - 1,
            x => x,
        };
        let mut m = BddManager::new(N as u32);
        let space = Space::contiguous(N as u32);
        let s = set_from_mask(&mut m, &space, a);
        let f = s.as_bfv().unwrap().clone();
        let comp = bfvr::bfv::convert::complement_via_characteristic(&mut m, &space, &f)
            .unwrap()
            .expect("a < MAX so the complement is non-empty");
        let cs = StateSet::NonEmpty(comp);
        assert!(s.is_disjoint(&mut m, &space, &cs).unwrap(), "case {case}");
        let u = s.union(&mut m, &space, &cs).unwrap();
        assert_eq!(u.len(&mut m, &space).unwrap(), 16, "case {case}");
    });
}
