//! Algebraic-law property tests for the public set API, across crates.

use bfvr::bdd::BddManager;
use bfvr::bfv::{Space, StateSet};
use proptest::prelude::*;

const N: usize = 4;

fn set_from_mask(m: &mut BddManager, space: &Space, mask: u16) -> StateSet {
    let points: Vec<Vec<bool>> = (0..16u16)
        .filter(|p| mask & (1 << p) != 0)
        .map(|p| (0..N).map(|i| (p >> (N - 1 - i)) & 1 == 1).collect())
        .collect();
    StateSet::from_points(m, space, &points).expect("small sets build")
}

fn mask_of(m: &mut BddManager, space: &Space, s: &StateSet) -> u16 {
    let mut mask = 0u16;
    for mem in s.members(m, space).expect("members enumerable") {
        let p: u16 = mem.iter().enumerate().map(|(i, &b)| (b as u16) << (N - 1 - i)).sum();
        mask |= 1 << p;
    }
    mask
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn boolean_algebra_laws(a: u16, b: u16, c: u16) {
        let mut m = BddManager::new(N as u32);
        let space = Space::contiguous(N as u32);
        let sa = set_from_mask(&mut m, &space, a);
        let sb = set_from_mask(&mut m, &space, b);
        let sc = set_from_mask(&mut m, &space, c);
        // Union/intersection against bitmask arithmetic.
        let u = sa.union(&mut m, &space, &sb).unwrap();
        prop_assert_eq!(mask_of(&mut m, &space, &u), a | b);
        let i = sa.intersect(&mut m, &space, &sb).unwrap();
        prop_assert_eq!(mask_of(&mut m, &space, &i), a & b);
        // Distributivity: a ∩ (b ∪ c) = (a∩b) ∪ (a∩c).
        let bc = sb.union(&mut m, &space, &sc).unwrap();
        let lhs = sa.intersect(&mut m, &space, &bc).unwrap();
        let ab = sa.intersect(&mut m, &space, &sb).unwrap();
        let ac = sa.intersect(&mut m, &space, &sc).unwrap();
        let rhs = ab.union(&mut m, &space, &ac).unwrap();
        prop_assert_eq!(mask_of(&mut m, &space, &lhs), mask_of(&mut m, &space, &rhs));
        // Canonicity: equal masks ⇒ identical representations.
        prop_assert_eq!(lhs == rhs, true);
        // Absorption: a ∪ (a ∩ b) = a.
        let absorbed = sa.union(&mut m, &space, &ab).unwrap();
        prop_assert_eq!(absorbed, sa);
    }

    #[test]
    fn counting_and_membership_consistent(a: u16) {
        let mut m = BddManager::new(N as u32);
        let space = Space::contiguous(N as u32);
        let s = set_from_mask(&mut m, &space, a);
        prop_assert_eq!(s.len(&mut m, &space).unwrap(), u128::from(a.count_ones()));
        for p in 0..16u16 {
            let point: Vec<bool> = (0..N).map(|i| (p >> (N - 1 - i)) & 1 == 1).collect();
            prop_assert_eq!(
                s.contains(&m, &space, &point).unwrap(),
                a & (1 << p) != 0,
                "point {:04b}", p
            );
        }
    }

    #[test]
    fn complement_partitions_the_universe(a in 1u16..u16::MAX) {
        let mut m = BddManager::new(N as u32);
        let space = Space::contiguous(N as u32);
        let s = set_from_mask(&mut m, &space, a);
        let f = s.as_bfv().unwrap().clone();
        let comp = bfvr::bfv::convert::complement_via_characteristic(&mut m, &space, &f)
            .unwrap()
            .expect("a < MAX so the complement is non-empty");
        let cs = StateSet::NonEmpty(comp);
        prop_assert!(s.is_disjoint(&mut m, &space, &cs).unwrap());
        let u = s.union(&mut m, &space, &cs).unwrap();
        prop_assert_eq!(u.len(&mut m, &space).unwrap(), 16);
    }
}
